#!/usr/bin/env python3
"""Perf-regression ledger for the simulator's headline benches.

Runs the quick deterministic sweeps (RIO_BENCH_QUICK=1, --threads 1,
RIO_JSON_STABLE=1), flattens the numbers that must not drift into a
ledger keyed "bench/point", and either writes the ledger or diffs it
against the checked-in baseline with per-metric tolerance bands.
Two suites exist: "core" (the PR 9 ledger, BENCH_9.json — per-packet
cycles, cluster ops, tail latencies) and "migrate" (the PR 10 ledger,
BENCH_10.json — live-migration blackout, pages shipped, state freight
and live-ring counts from bench_migration):

  python3 scripts/bench_regress.py --build build --out BENCH_9.json
  python3 scripts/bench_regress.py --build build \
      --baseline BENCH_9.json --check
  python3 scripts/bench_regress.py --build build --suite migrate \
      --baseline BENCH_10.json --check

The simulation is deterministic, so in-tolerance drift normally means
exactly zero drift; the bands exist so an intentional model change
that moves a number by a fraction of a percent (rounding in a
refactored formula) fails loudly only when it matters. Anything
beyond the band is a regression (or an un-regenerated ledger) and
fails CI. Host-side throughput (bench_selfperf) is recorded in a
separate "host" section for trend plotting and is never gated — it
measures the machine, not the model.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Relative tolerance per gated metric. Metrics absent here are gated
# exactly (the simulation is deterministic; page and ring counts must
# not move at all without a regenerated ledger).
TOLERANCES = {
    "cycles_per_pkt": 0.02,
    "cycles_per_op": 0.02,
    "avg_burst": 0.02,
    "p99_ns": 0.05,
    "p999_ns": 0.05,
    "blackout_ns": 0.05,
}

ENV = dict(os.environ, RIO_BENCH_QUICK="1", RIO_JSON_STABLE="1")


def run_bench(build, name, args):
    """Run one bench with --json into a temp file, return its rows."""
    exe = os.path.join(build, "bench", name)
    if not os.path.exists(exe):
        sys.exit(f"bench_regress: missing binary {exe} (build first)")
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        cmd = [exe] + args + ["--json", tmp.name]
        subprocess.run(cmd, env=ENV, check=True,
                       stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
        with open(tmp.name) as f:
            return json.load(f)["rows"]


def collect(build):
    entries = {}

    for row in run_bench(build, "bench_fig7_cycles_per_packet", []):
        entries[f"fig7/{row['mode']}"] = {
            "cycles_per_pkt": row["total"],
        }

    for row in run_bench(build, "bench_cluster_rdma",
                         ["--connections", "64", "--quick",
                          "--threads", "1"]):
        if "cycles_per_op" not in row:
            continue  # the crossover-summary row carries no gated metric
        key = f"cluster64/{row['mode']}/{row['variant']}"
        entries[key] = {
            "cycles_per_op": row["cycles_per_op"],
            "avg_burst": row["avg_burst"],
        }

    for row in run_bench(build, "bench_tail_latency",
                         ["--quick", "--slo", "--threads", "1"]):
        key = (f"tail/{row['mode']}/loss{row['loss']}"
               f"/incast{row['incast']}")
        entries[key] = {
            "p99_ns": row["p99_ns"],
            "p999_ns": row["p999_ns"],
        }

    host = {}
    for row in run_bench(build, "bench_selfperf", ["--quick"]):
        key = f"selfperf/{row['config']}/t{row['threads']}"
        host[key] = {
            "events_per_sec": row["events_per_sec"],
            "host_ms": row["host_ms"],
        }

    return {"schema": 1, "quick": True, "entries": entries,
            "host": host}


def collect_migrate(build):
    """Live-migration ledger: every sweep point bench_migration emits
    (base platform x mode grid, rIOMMU scaling, dirty-rate pressure,
    lossy stream), gating the headline claims — blackout within its
    band, pages shipped / state freight / live rings exact."""
    entries = {}
    for row in run_bench(build, "bench_migration",
                         ["--quick", "--threads", "1"]):
        if "blackout_ns" not in row:
            continue  # compat/base rows carry no migration metrics
        key = (f"migrate/{row['variant']}/{row['mode']}"
               f"/{row['platform']}/q{row['app_qps']}/p{row['pages']}")
        entries[key] = {
            "blackout_ns": row["blackout_ns"],
            "pages_shipped": row["pages_shipped"],
            "state_bytes": row["state_bytes"],
            "live_rings": row["live_rings"],
        }
    return {"schema": 1, "quick": True, "entries": entries, "host": {}}


def check(ledger, baseline):
    base = baseline["entries"]
    cur = ledger["entries"]
    failures = []
    for key in sorted(set(base) | set(cur)):
        if key not in cur:
            failures.append(f"{key}: missing from this run")
            continue
        if key not in base:
            failures.append(f"{key}: not in the baseline ledger "
                            "(regenerate with --out)")
            continue
        for metric, want in base[key].items():
            got = cur[key].get(metric)
            if got is None:
                failures.append(f"{key}.{metric}: missing")
                continue
            tol = TOLERANCES.get(metric, 0.0)
            bound = abs(want) * tol
            if abs(got - want) > bound:
                failures.append(
                    f"{key}.{metric}: {got} vs baseline {want} "
                    f"(tolerance ±{tol:.0%})")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", required=True,
                    help="CMake build dir holding bench/ binaries")
    ap.add_argument("--suite", choices=("core", "migrate"),
                    default="core",
                    help="which ledger to collect (default: core)")
    ap.add_argument("--out", help="write the ledger here")
    ap.add_argument("--baseline", help="checked-in ledger to diff")
    ap.add_argument("--check", action="store_true",
                    help="fail if any gated metric leaves its band")
    args = ap.parse_args()

    collector = collect_migrate if args.suite == "migrate" else collect
    ledger = collector(args.build)
    n = len(ledger["entries"])

    if args.out:
        with open(args.out, "w") as f:
            json.dump(ledger, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"bench_regress: wrote {args.out} ({n} entries)")

    if args.check:
        if not args.baseline:
            sys.exit("bench_regress: --check needs --baseline")
        with open(args.baseline) as f:
            baseline = json.load(f)
        failures = check(ledger, baseline)
        if failures:
            for f_ in failures:
                print(f"bench_regress: FAIL {f_}", file=sys.stderr)
            sys.exit(1)
        print(f"bench_regress: {n} entries within tolerance of "
              f"{args.baseline}")


if __name__ == "__main__":
    main()
