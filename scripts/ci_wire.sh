#!/usr/bin/env bash
# Hostile-wire lane under AddressSanitizer: loss/dup/delay injection,
# bounded-port incast drops, go-back-N retransmit, RTO backoff and
# QP-error recovery are exactly the paths where a dangling Op, a
# double-freed QP slot or a use-after-teardown mail would hide, so
# the whole lane runs on an ASan+UBSan build. Covers the cluster
# suite (late-arrival-after-teardown included), a WireFuzz soak with
# seeds only this lane runs, the golden_wire inertness/determinism
# gate, and a full (non-quick) storm sweep.
#
# Run from the repo root:
#
#   scripts/ci_wire.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-wire-asan}"

cmake -B "$BUILD_DIR" -S . -DRIO_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" -- \
    cluster_test fuzz_test bench_wire_storm

export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="print_stacktrace=1"

"$BUILD_DIR/tests/cluster_test"

# WireFuzz soak: loss x incast x abort-churn campaigns, each seed
# replayed on 1 and 3 worker threads and compared field for field
# (retransmit, RTO, QP-error and late-arrival counters included).
export RIO_WIRE_EXTRA_SEEDS="2147483647,998244353,613566757"
"$BUILD_DIR/tests/fuzz_test" --gtest_filter='*WireFuzz*'
unset RIO_WIRE_EXTRA_SEEDS

# Inertness + determinism gate (disarmed == cluster golden; armed
# storm byte-identical across thread counts), under ASan.
bash tests/golden_wire.sh "$BUILD_DIR/bench/bench_wire_storm" \
    tests/golden/cluster_rdma_64_quick.json

# Full storm sweep: 3 losses x incast x 7 modes with the bench's own
# conservation and protection asserts armed, sanitizers watching.
"$BUILD_DIR/bench/bench_wire_storm" --quick > /dev/null

echo "wire lane passed"
