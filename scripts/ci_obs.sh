#!/usr/bin/env bash
# Observability lane: build with the obs layer explicitly ON, prove
# the zero-cost invariant (golden benches byte-identical with full
# instrumentation), and validate the Chrome-trace export end to end:
# a fault-storm run must produce parseable trace_event JSON with
# paired QI async spans and at least one flight-recorder dump marker.
#
# Run from the repo root:
#
#   scripts/ci_obs.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-obs}"

cmake -B "$BUILD_DIR" -S . -DRIO_OBS=ON -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

# The obs-specific suites plus every golden byte-for-byte check.
ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'obs_test|golden_obs|golden_scaling|golden_lifecycle'

# End-to-end timeline export: the fault storm exercises QI spans, DMA
# fault recovery and the flight recorder in one run.
TRACE="$BUILD_DIR/fault_storm_timeline.json"
RIO_BENCH_QUICK=1 "$BUILD_DIR/bench/bench_fault_storm" \
    --timeline "$TRACE" > /dev/null

python3 - "$TRACE" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
phases = {}
for e in events:
    phases[e["ph"]] = phases.get(e["ph"], 0) + 1

# Paired async QI spans: every begin has an end with the same id.
begins = {(e["pid"], e["id"]) for e in events
          if e["ph"] == "b" and "id" in e}
ends = {(e["pid"], e["id"]) for e in events
        if e["ph"] == "e" and "id" in e}
assert begins, "no QI async spans recorded"
unmatched = begins - ends
assert not unmatched, f"unpaired QI spans: {sorted(unmatched)[:5]}"

dumps = [e for e in events if e.get("name") == "flight_dump"]
assert dumps, "no flight-recorder dump marker in the timeline"

print(f"timeline OK: {len(events)} events, phases {phases}, "
      f"{len(begins)} QI spans, {len(dumps)} flight dumps")
EOF

# Distributed-trace validation: a hostile-wire cluster run must export
# stitched op spans — every trace id opens with op posts and closes
# with exactly one terminal CQE, every wire/ingress child belongs to a
# known op, and at least one go-back-N retransmit episode is visible.
TRACE2="$BUILD_DIR/wire_storm_timeline.json"
RIO_BENCH_QUICK=1 "$BUILD_DIR/bench/bench_wire_storm" \
    --quick --loss 0.02 --timeline "$TRACE2" \
    --timeline-cap 262144 > /dev/null 2>&1

python3 - "$TRACE2" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]

ops = [e for e in events if e.get("cat") == "op"]
assert ops, "no distributed op spans in the cluster trace"

def tid_of(e):
    return e["id2"]["global"]

posts = {}
cqes = {}
children = []
for e in ops:
    if e["name"] == "op":
        if e["ph"] == "b":
            posts[tid_of(e)] = posts.get(tid_of(e), 0) + 1
        elif e["ph"] == "e":
            cqes[tid_of(e)] = cqes.get(tid_of(e), 0) + 1
    else:
        children.append(e)

assert posts, "no op post spans"
dup_posts = {t: n for t, n in posts.items() if n != 1}
assert not dup_posts, f"trace ids reused across posts: {dup_posts}"
bad_cqes = {t: n for t, n in cqes.items() if n != 1}
assert not bad_cqes, f"ops without exactly one terminal CQE: {bad_cqes}"
orphan_cqes = set(cqes) - set(posts)
assert not orphan_cqes, f"CQE spans with no post: {sorted(orphan_cqes)[:5]}"

orphans = [e["name"] for e in children if tid_of(e) not in posts]
assert not orphans, f"orphan wire spans: {orphans[:5]}"
rtx = [e for e in children if e["name"] == "retransmit"]
assert rtx, "hostile wire produced no visible retransmit episode"

meta = trace.get("rioMeta", {})
assert meta.get("dropped", 1) == 0, \
    f"trace rings overflowed ({meta}); raise --timeline-cap"

print(f"cluster trace OK: {len(posts)} ops, {len(cqes)} CQEs, "
      f"{len(children)} child spans, {len(rtx)} retransmits, "
      f"rioMeta {meta}")
EOF

# Perf-regression ledger: the quick deterministic sweeps must stay
# inside the tolerance bands of the checked-in BENCH_9.json, and the
# live-migration sweep (blackout, pages shipped, state freight, live
# rings) inside those of BENCH_10.json.
python3 scripts/bench_regress.py --build "$BUILD_DIR" \
    --baseline BENCH_9.json --check
python3 scripts/bench_regress.py --build "$BUILD_DIR" \
    --suite migrate --baseline BENCH_10.json --check

echo "observability lane passed"
