#!/usr/bin/env bash
# Observability lane: build with the obs layer explicitly ON, prove
# the zero-cost invariant (golden benches byte-identical with full
# instrumentation), and validate the Chrome-trace export end to end:
# a fault-storm run must produce parseable trace_event JSON with
# paired QI async spans and at least one flight-recorder dump marker.
#
# Run from the repo root:
#
#   scripts/ci_obs.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-obs}"

cmake -B "$BUILD_DIR" -S . -DRIO_OBS=ON -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

# The obs-specific suites plus every golden byte-for-byte check.
ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'obs_test|golden_obs|golden_scaling|golden_lifecycle'

# End-to-end timeline export: the fault storm exercises QI spans, DMA
# fault recovery and the flight recorder in one run.
TRACE="$BUILD_DIR/fault_storm_timeline.json"
RIO_BENCH_QUICK=1 "$BUILD_DIR/bench/bench_fault_storm" \
    --timeline "$TRACE" > /dev/null

python3 - "$TRACE" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
phases = {}
for e in events:
    phases[e["ph"]] = phases.get(e["ph"], 0) + 1

# Paired async QI spans: every begin has an end with the same id.
begins = {(e["pid"], e["id"]) for e in events if e["ph"] == "b"}
ends = {(e["pid"], e["id"]) for e in events if e["ph"] == "e"}
assert begins, "no QI async spans recorded"
unmatched = begins - ends
assert not unmatched, f"unpaired QI spans: {sorted(unmatched)[:5]}"

dumps = [e for e in events if e.get("name") == "flight_dump"]
assert dumps, "no flight-recorder dump marker in the timeline"

print(f"timeline OK: {len(events)} events, phases {phases}, "
      f"{len(begins)} QI spans, {len(dumps)} flight dumps")
EOF

echo "observability lane passed"
