/**
 * @file
 * Tests for the conservative parallel engine: lane isolation, mail
 * ordering, horizon math, and the headline property — byte-identical
 * execution regardless of thread count.
 */
#include <gtest/gtest.h>

#include <array>
#include <utility>
#include <vector>

#include "des/parallel.h"

namespace rio::des {
namespace {

TEST(ParallelEngine, SingleLaneBehavesLikeSimulator)
{
    ParallelEngine eng(1);
    Lane &l = eng.addLane();
    std::vector<int> order;
    l.sim().scheduleAt(30, [&] { order.push_back(3); });
    l.sim().scheduleAt(10, [&] { order.push_back(1); });
    l.sim().scheduleAt(20, [&] { order.push_back(2); });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(l.sim().now(), 30u);
    EXPECT_EQ(eng.eventsRun(), 3u);
    EXPECT_EQ(eng.messagesDelivered(), 0u);
}

TEST(ParallelEngine, UncoupledLanesFinishInOneWindow)
{
    // Default (infinite) lookahead: independent lanes never
    // synchronize mid-run — the parameter-sweep shape.
    ParallelEngine eng(2);
    std::array<u64, 3> ran{};
    for (int i = 0; i < 3; ++i) {
        Lane &l = eng.addLane();
        for (int k = 0; k <= i; ++k)
            l.sim().scheduleAt(static_cast<Nanos>(10 * (k + 1)),
                               [&ran, i] { ++ran[i]; });
    }
    eng.run();
    EXPECT_EQ(ran[0], 1u);
    EXPECT_EQ(ran[1], 2u);
    EXPECT_EQ(ran[2], 3u);
    EXPECT_EQ(eng.rounds(), 1u) << "no coupling, no extra barriers";
}

TEST(ParallelEngine, CrossLaneMailArrivesAtItsTimestamp)
{
    ParallelEngine eng(1);
    Lane &a = eng.addLane();
    Lane &b = eng.addLane();
    eng.setLookahead(10);
    Nanos seen = 0;
    a.sim().scheduleAt(5, [&] {
        a.sendTo(b, a.sim().now() + 10, [&] { seen = b.sim().now(); });
    });
    eng.run();
    EXPECT_EQ(seen, 15u);
    EXPECT_EQ(eng.messagesDelivered(), 1u);
}

TEST(ParallelEngine, MailDrainSortsByTimeSourceThenSeq)
{
    // Three senders post to one destination at overlapping times; the
    // destination must run them in (when, src, seq) order no matter
    // the physical arrival interleaving.
    ParallelEngine eng(1);
    Lane &dst = eng.addLane();
    Lane &s1 = eng.addLane();
    Lane &s2 = eng.addLane();
    eng.setLookahead(100);
    std::vector<std::pair<Nanos, int>> got;
    // Sent from setup (main thread), deliberately out of order.
    s2.sendTo(dst, 200, [&] { got.emplace_back(200, 21); });
    s2.sendTo(dst, 100, [&] { got.emplace_back(100, 22); });
    s1.sendTo(dst, 200, [&] { got.emplace_back(200, 11); });
    s1.sendTo(dst, 100, [&] { got.emplace_back(100, 12); });
    eng.run();
    const std::vector<std::pair<Nanos, int>> want{
        {100, 12}, {100, 22}, {200, 11}, {200, 21}};
    EXPECT_EQ(got, want)
        << "same timestamp: lane 1 before lane 2; same lane: send order";
}

TEST(ParallelEngine, RunUntilAdvancesEveryLaneClock)
{
    ParallelEngine eng(1);
    Lane &a = eng.addLane();
    Lane &b = eng.addLane();
    b.sim().scheduleAt(40, [] {});
    eng.runUntil(1000);
    EXPECT_EQ(a.sim().now(), 1000u);
    EXPECT_EQ(b.sim().now(), 1000u);
    EXPECT_EQ(eng.eventsRun(), 1u);
}

/** Drive a ping-pong between two lanes; returns per-lane arrival
 * traces. The whole run is deterministic, so traces must be equal
 * for every thread count. */
std::array<std::vector<Nanos>, 2>
runPingPong(unsigned threads, int hops, Nanos wire)
{
    ParallelEngine eng(threads);
    Lane &a = eng.addLane();
    Lane &b = eng.addLane();
    eng.setLookahead(wire);
    std::array<std::vector<Nanos>, 2> trace;

    // Recursive hop: runs in `to`, then volleys back.
    struct Hop
    {
        static void
        arm(Lane &from, Lane &to, Nanos when, Nanos wire, int left,
            std::array<std::vector<Nanos>, 2> &trace)
        {
            from.sendTo(to, when, [&from, &to, wire, left, &trace] {
                trace[to.id()].push_back(to.sim().now());
                if (left > 1)
                    arm(to, from, to.sim().now() + wire, wire, left - 1,
                        trace);
            });
        }
    };
    Hop::arm(a, b, wire, wire, hops, trace);
    eng.run();
    return trace;
}

TEST(ParallelEngine, PingPongIsDeterministicAcrossThreadCounts)
{
    const auto seq = runPingPong(1, 64, 50);
    const auto par2 = runPingPong(2, 64, 50);
    const auto par4 = runPingPong(4, 64, 50);
    EXPECT_EQ(seq, par2);
    EXPECT_EQ(seq, par4);
    // 64 hops at wire latency 50: arrivals at 50, 100, ... 3200.
    ASSERT_EQ(seq[1].size(), 32u);
    EXPECT_EQ(seq[1].front(), 50u);
    EXPECT_EQ(seq[0].front(), 100u);
    EXPECT_EQ(seq[0].back() + seq[1].back(), 3150u + 3200u);
}

TEST(ParallelEngine, ManyLanesManyMessagesDeterministic)
{
    // A denser pattern: every lane fires events that message its ring
    // neighbor. Compare full arrival traces across thread counts.
    auto run = [](unsigned threads) {
        constexpr int kLanes = 8, kMsgs = 40;
        constexpr Nanos kWire = 25;
        ParallelEngine eng(threads);
        for (int i = 0; i < kLanes; ++i)
            eng.addLane();
        eng.setLookahead(kWire);
        auto trace = std::make_unique<
            std::array<std::vector<Nanos>, kLanes>>();
        for (int i = 0; i < kLanes; ++i) {
            Lane &self = eng.lane(static_cast<size_t>(i));
            Lane &next =
                eng.lane(static_cast<size_t>((i + 1) % kLanes));
            for (int m = 0; m < kMsgs; ++m) {
                const Nanos at = static_cast<Nanos>(10 + 7 * m + i);
                self.sim().scheduleAt(at, [&self, &next, &t = *trace] {
                    const Nanos when = self.sim().now() + kWire;
                    self.sendTo(next, when, [&next, &t] {
                        t[next.id()].push_back(next.sim().now());
                    });
                });
            }
        }
        eng.run();
        return std::make_pair(*trace, eng.eventsRun());
    };
    const auto seq = run(1);
    const auto par = run(4);
    EXPECT_EQ(seq.first, par.first);
    EXPECT_EQ(seq.second, par.second);
    EXPECT_EQ(seq.second, u64{8 * 40 * 2}) << "send event + delivery";
}

TEST(ParallelEngineDeathTest, WireFasterThanLookaheadIsCaught)
{
    // A message timestamped inside the current window violates the
    // conservative contract — the engine must refuse, not reorder.
    // Mail is delivered only at window barriers, where the receiver's
    // clock sits at the previous window's end, so late mail is caught
    // regardless of which lane sent it (both directions pinned here).
    // threads=1: the inline path spawns nothing, so the default
    // death-test style is safe.
    EXPECT_DEATH(
        {
            ParallelEngine eng(1);
            Lane &a = eng.addLane();
            Lane &b = eng.addLane();
            eng.setLookahead(100); // claims wire >= 100...
            a.sim().scheduleAt(90, [] {});
            b.sim().scheduleAt(0, [&] {
                b.sendTo(a, b.sim().now() + 1, [] {}); // ...but is 1
            });
            eng.run();
        },
        "past");
    EXPECT_DEATH(
        {
            ParallelEngine eng(1);
            Lane &a = eng.addLane();
            Lane &b = eng.addLane();
            eng.setLookahead(100);
            b.sim().scheduleAt(90, [] {});
            a.sim().scheduleAt(0, [&] {
                // Lower-indexed sender: before barrier-batched
                // delivery this was drained in-window and slipped
                // through; it must die just the same.
                a.sendTo(b, a.sim().now() + 1, [] {});
            });
            eng.run();
        },
        "past");
}

/** The wire == lookahead boundary: mail lands exactly on the horizon.
 * Returns the destination lane's full execution order (tag per
 * callback, in the order they ran). Must be identical for every
 * thread count — the window-boundary race this pins regressed once:
 * an in-window inbox drain delivered horizon mail in the current or
 * the next window depending on thread scheduling. */
std::vector<int>
runHorizonBoundary(unsigned threads)
{
    constexpr Nanos kWire = 50;
    ParallelEngine eng(threads);
    Lane &dst = eng.addLane();
    Lane &s1 = eng.addLane();
    Lane &s2 = eng.addLane();
    eng.setLookahead(kWire);
    std::vector<int> order;
    // dst's own event at the horizon timestamp, scheduled in-window.
    dst.sim().scheduleAt(10, [&] {
        dst.sim().scheduleAt(dst.sim().now() + kWire,
                             [&] { order.push_back(1); });
    });
    // Two senders mail dst at exactly t_min + lookahead = horizon;
    // the first mail callback chains a zero-delay (same-timestamp)
    // follow-up — the reviewer scenario for drain-batch sensitivity.
    s1.sim().scheduleAt(10, [&] {
        s1.sendTo(dst, s1.sim().now() + kWire, [&] {
            order.push_back(2);
            dst.sim().scheduleAt(dst.sim().now(),
                                 [&] { order.push_back(4); });
        });
    });
    s2.sim().scheduleAt(10, [&] {
        s2.sendTo(dst, s2.sim().now() + kWire,
                  [&] { order.push_back(3); });
    });
    eng.run();
    return order;
}

TEST(ParallelEngine, HorizonMailOrderIsThreadCountInvariant)
{
    // Pin the exact semantics: dst's own horizon event ran in the
    // window that scheduled it; both mails were delivered in one
    // barrier batch after it, sorted by source lane; the zero-delay
    // follow-up (scheduled during delivery) runs last.
    const std::vector<int> want{1, 2, 3, 4};
    EXPECT_EQ(runHorizonBoundary(1), want);
    // The race was thread-schedule-dependent; give it iterations.
    for (int rep = 0; rep < 25; ++rep) {
        ASSERT_EQ(runHorizonBoundary(2), want) << "rep " << rep;
        ASSERT_EQ(runHorizonBoundary(4), want) << "rep " << rep;
    }
}

} // namespace
} // namespace rio::des
