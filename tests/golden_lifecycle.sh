#!/usr/bin/env bash
# Bit-for-bit regression for the lifecycle subsystem: at churn rate 0
# the lifecycle layer must be a perfect no-op, so bench_lifecycle_churn
# --rate 0 and bench_fig7_cycles_per_packet — the same workload, same
# window — must produce identical JSON (modulo the bench name line).
# Any diff means the lifecycle wiring perturbed the deterministic
# replay: an extra RNG draw, a changed allocation order, a stray event.
#
# Usage: golden_lifecycle.sh <bench_lifecycle_churn> <bench_fig7>
set -euo pipefail

churn="$1"
fig7="$2"
churn_out="$(mktemp)"
fig7_out="$(mktemp)"
trap 'rm -f "$churn_out" "$fig7_out"' EXIT

RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 "$churn" --rate 0 --json "$churn_out" > /dev/null
RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 "$fig7" --json "$fig7_out" > /dev/null

strip_name() { sed 's/"bench": "[^"]*"/"bench": ""/' "$1"; }

if ! diff -u <(strip_name "$fig7_out") <(strip_name "$churn_out"); then
    echo "golden_lifecycle: rate-0 churn diverged from bench_fig7" >&2
    exit 1
fi
echo "golden_lifecycle: rate-0 output matches bench_fig7"
