/**
 * @file
 * Randomized cross-checking of the translation hardware against
 * simple reference models: thousands of random map/unmap/access
 * operations where every translate() outcome (address AND
 * fault-or-not) must agree with an oracle built from plain maps.
 */
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.h"
#include "dma/baseline_handle.h"
#include "dma/dma_context.h"
#include "migrate/migrate.h"
#include "riommu/rdevice.h"
#include "sys/cluster.h"
#include "sys/machine.h"
#include "virt/guest.h"
#include "workloads/fleet.h"

namespace rio {
namespace {

using iommu::Access;
using iommu::Bdf;
using iommu::DmaDir;

struct FuzzParam
{
    u64 seed;
    int ops;
};

// ---- baseline IOMMU vs oracle ------------------------------------------------

class IommuFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(IommuFuzz, TranslateAgreesWithOracle)
{
    const auto [seed, ops] = GetParam();
    Rng rng(seed);
    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    iommu::Iommu iommu(pm, cost);
    iommu::IoPageTable table(pm, false, cost, nullptr);
    const Bdf bdf{0, 3, 0};
    iommu.attachDevice(bdf, &table);

    struct Entry
    {
        u64 phys_pfn;
        bool writable;
    };
    std::unordered_map<u64, Entry> oracle; // iova pfn -> entry

    for (int i = 0; i < ops; ++i) {
        const u64 pfn = rng.below(256); // small space: collisions likely
        const int action = static_cast<int>(rng.below(4));
        if (action == 0) { // map
            const bool writable = rng.chance(0.5);
            const u64 phys = 0x100 + rng.below(1000);
            Status s = table.map(pfn, phys,
                                 writable ? DmaDir::kBidir
                                          : DmaDir::kToDevice);
            if (oracle.count(pfn)) {
                EXPECT_EQ(s.code(), ErrorCode::kExists);
            } else {
                ASSERT_TRUE(s.isOk());
                oracle[pfn] = {phys, writable};
            }
        } else if (action == 1) { // unmap
            Status s = table.unmap(pfn);
            EXPECT_EQ(s.isOk(), oracle.erase(pfn) == 1);
            iommu.invalidateIotlbEntry(bdf, pfn); // strict semantics
        } else { // access (read or write)
            const Access acc =
                rng.chance(0.5) ? Access::kRead : Access::kWrite;
            const u64 offset = rng.below(kPageSize);
            auto t = iommu.translate(bdf, (pfn << kPageShift) | offset,
                                     acc);
            auto it = oracle.find(pfn);
            const bool should_ok =
                it != oracle.end() &&
                (acc == Access::kRead || it->second.writable);
            ASSERT_EQ(t.isOk(), should_ok)
                << "op " << i << " pfn " << pfn;
            if (should_ok) {
                EXPECT_EQ(t.value().pa,
                          (it->second.phys_pfn << kPageShift) | offset);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IommuFuzz,
                         ::testing::Values(FuzzParam{11, 4000},
                                           FuzzParam{22, 4000},
                                           FuzzParam{33, 8000},
                                           FuzzParam{44, 2000}));

// ---- rIOMMU ring vs oracle ----------------------------------------------------

class RiommuFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(RiommuFuzz, RingStateAgreesWithOracle)
{
    const auto [seed, ops] = GetParam();
    Rng rng(seed);
    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    riommu::Riommu riommu(pm, cost);
    const Bdf bdf{0, 4, 0};
    constexpr u32 kRing = 32;
    riommu::RDevice dev(riommu, pm, bdf, std::vector<u32>{kRing}, true,
                        cost, nullptr);
    const PhysAddr pool = pm.allocContiguous(64 * kPageSize);

    struct Live
    {
        riommu::RIova iova;
        PhysAddr pa;
        u32 size;
        bool writable;
    };
    std::deque<Live> fifo; // ring semantics: map and unmap FIFO

    for (int i = 0; i < ops; ++i) {
        const int action = static_cast<int>(rng.below(3));
        if (action == 0 && fifo.size() < kRing) { // map
            const u32 size = 1 + static_cast<u32>(rng.below(4096));
            const PhysAddr pa = pool + rng.below(60 * kPageSize);
            const bool writable = rng.chance(0.5);
            auto m = dev.map(0, pa, size,
                             writable ? DmaDir::kBidir
                                      : DmaDir::kToDevice);
            ASSERT_TRUE(m.isOk());
            fifo.push_back({m.value(), pa, size, writable});
        } else if (action == 1 && !fifo.empty()) { // unmap oldest
            ASSERT_TRUE(
                dev.unmap(fifo.front().iova, rng.chance(0.3)).isOk());
            fifo.pop_front();
        } else if (!fifo.empty()) { // access random live mapping
            const Live &l = fifo[rng.below(fifo.size())];
            const u32 offset = static_cast<u32>(rng.below(l.size + 16));
            const Access acc =
                rng.chance(0.5) ? Access::kRead : Access::kWrite;
            auto t = riommu.translate(bdf, l.iova.withOffset(offset),
                                      acc, 1);
            const bool should_ok =
                offset < l.size &&
                (acc == Access::kRead || l.writable);
            ASSERT_EQ(t.isOk(), should_ok) << "op " << i;
            if (should_ok) {
                EXPECT_EQ(t.value().pa, l.pa + offset);
            }
        }
        ASSERT_EQ(dev.nmapped(0), fifo.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RiommuFuzz,
                         ::testing::Values(FuzzParam{5, 6000},
                                           FuzzParam{6, 6000},
                                           FuzzParam{7, 12000}));

// ---- fault injection vs oracle -------------------------------------------------

/**
 * The injector makes exactly one Bernoulli draw from its seeded Rng
 * per top-level device access, so an oracle holding a same-seeded Rng
 * predicts WHICH access faults. The campaign runs every protection
 * mode: agreement on the faulting op, on the recorded reason code,
 * and on the post-recovery translation state (a repaired mapping
 * must translate again).
 */
struct FaultFuzzParam
{
    dma::ProtectionMode mode;
    u64 seed;
    int ops;
};

/** Append seeds from @p env ("101,102,...") to @p seeds — the CI
 * lanes widen fuzz campaigns without a rebuild. */
void
appendExtraSeeds(std::vector<u64> &seeds, const char *env)
{
    const char *extra = std::getenv(env);
    if (!extra)
        return;
    u64 v = 0;
    bool have = false;
    for (const char *p = extra;; ++p) {
        if (*p >= '0' && *p <= '9') {
            v = v * 10 + static_cast<u64>(*p - '0');
            have = true;
        } else {
            if (have)
                seeds.push_back(v);
            v = 0;
            have = false;
            if (!*p)
                break;
        }
    }
}

std::vector<FaultFuzzParam>
faultFuzzParams()
{
    // 8 base seeds; RIO_FUZZ_EXTRA_SEEDS appends more (sanitize CI).
    std::vector<u64> seeds = {3, 7, 31, 64, 129, 1023, 4096, 65537};
    appendExtraSeeds(seeds, "RIO_FUZZ_EXTRA_SEEDS");
    const std::array<dma::ProtectionMode, 9> all = {
        dma::ProtectionMode::kStrict,    dma::ProtectionMode::kStrictPlus,
        dma::ProtectionMode::kDefer,     dma::ProtectionMode::kDeferPlus,
        dma::ProtectionMode::kRiommuNc,  dma::ProtectionMode::kRiommu,
        dma::ProtectionMode::kNone,      dma::ProtectionMode::kHwPassthrough,
        dma::ProtectionMode::kSwPassthrough};
    std::vector<FaultFuzzParam> params;
    for (dma::ProtectionMode mode : all)
        for (u64 seed : seeds)
            params.push_back({mode, seed, 400});
    return params;
}

class FaultFuzz : public ::testing::TestWithParam<FaultFuzzParam>
{
};

TEST_P(FaultFuzz, InjectedFaultsAgreeWithOracle)
{
    const auto [mode, seed, ops] = GetParam();
    constexpr double kRate = 0.2;
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    const Bdf bdf{0, 3, 0};
    auto handle = ctx.makeHandle(mode, bdf, &acct, {64});
    handle->setFaultPolicy(dma::FaultPolicy::kAbort);
    dma::FaultInjectConfig cfg;
    cfg.rate = kRate;
    cfg.seed = seed;
    handle->setFaultInjection(cfg);
    Rng oracle(seed); // mirrors the injector's stream draw-for-draw

    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 2048, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    const u64 addr = m.value().device_addr;

    const bool baseline_iommu = mode == dma::ProtectionMode::kStrict ||
                                mode == dma::ProtectionMode::kStrictPlus ||
                                mode == dma::ProtectionMode::kDefer ||
                                mode == dma::ProtectionMode::kDeferPlus;
    const bool riommu = dma::modeUsesRiommu(mode);

    u64 predicted = 0;
    u64 v = 0;
    for (int i = 0; i < ops; ++i) {
        const size_t iommu_faults_before = ctx.iommu().faults().size();
        const size_t ring_faults_before = ctx.riommu().faults().size();
        const bool predict = oracle.chance(kRate);
        predicted += predict ? 1 : 0;
        Status s = (i % 2) ? handle->deviceWrite(addr, &v, 8)
                           : handle->deviceRead(addr, &v, 8);
        ASSERT_EQ(!s.isOk(), predict)
            << "op " << i << ": oracle and injector disagree";
        if (!predict)
            continue;

        // Reason code: injected damage unmaps the translation, so
        // the hardware reports not-present (modes with no modeled
        // translation synthesize a bus abort and record nothing).
        if (baseline_iommu) {
            ASSERT_GT(ctx.iommu().faults().size(), iommu_faults_before);
            const iommu::FaultRecord &rec = ctx.iommu().faults().back();
            EXPECT_EQ(rec.reason, iommu::FaultReason::kNotPresent);
            EXPECT_EQ(rec.iova, addr);
            EXPECT_EQ(rec.bdf.pack(), bdf.pack());
        } else if (riommu) {
            ASSERT_GT(ctx.riommu().faults().size(), ring_faults_before);
            const iommu::FaultRecord &rec = ctx.riommu().faults().back();
            EXPECT_EQ(rec.reason, iommu::FaultReason::kNotPresent);
            EXPECT_EQ(rec.iova, addr);
            // Recovery acknowledged (cleared) the ring latch.
            EXPECT_EQ(ctx.riommu().ringFault(bdf, 0), nullptr);
        }

        // Post-recovery state: the repaired mapping translates again.
        // Each verification access draws from the same stream, so
        // mirror it (10 consecutive injections: p = 0.2^10).
        bool recovered_ok = false;
        for (int t = 0; t < 10 && !recovered_ok; ++t) {
            const bool vinj = oracle.chance(kRate);
            predicted += vinj ? 1 : 0;
            Status vs = handle->deviceRead(addr, &v, 8);
            ASSERT_EQ(!vs.isOk(), vinj) << "verify op " << i;
            recovered_ok = vs.isOk();
        }
        EXPECT_TRUE(recovered_ok);
    }

    EXPECT_EQ(handle->faultStats().injected, predicted);
    EXPECT_GE(predicted, 1u) << "400 ops at 20% should inject";
    // Repair left the mapping whole: teardown must not trip the
    // driver's unmap assertions.
    EXPECT_TRUE(handle->unmap(m.value(), true).isOk());
}

TEST_P(FaultFuzz, RetryRemapDeliversEveryAccess)
{
    const auto [mode, seed, ops] = GetParam();
    constexpr double kRate = 0.2;
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    auto handle = ctx.makeHandle(mode, Bdf{0, 3, 0}, &acct, {64});
    handle->setFaultPolicy(dma::FaultPolicy::kRetryRemap);
    dma::FaultInjectConfig cfg;
    cfg.rate = kRate;
    cfg.seed = seed;
    handle->setFaultInjection(cfg);
    Rng oracle(seed);

    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 2048, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());

    u64 predicted = 0;
    u64 v = 0;
    for (int i = 0; i < ops; ++i) {
        predicted += oracle.chance(kRate) ? 1 : 0;
        // Retries replay the access inline (no further draws), so
        // with remap every access must come back successful.
        Status s = (i % 2)
                       ? handle->deviceWrite(m.value().device_addr, &v, 8)
                       : handle->deviceRead(m.value().device_addr, &v, 8);
        ASSERT_TRUE(s.isOk()) << "op " << i << ": " << s.toString();
    }
    const dma::FaultStats st = handle->faultStats();
    EXPECT_EQ(st.injected, predicted);
    EXPECT_EQ(st.faults_seen, st.injected);
    EXPECT_EQ(st.recovered, st.injected);
    EXPECT_EQ(st.dropped, 0u);
    EXPECT_TRUE(handle->unmap(m.value(), true).isOk());
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, FaultFuzz, ::testing::ValuesIn(faultFuzzParams()),
    [](const ::testing::TestParamInfo<FaultFuzzParam> &info) {
        std::string name = dma::modeName(info.param.mode);
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name + "_s" + std::to_string(info.param.seed);
    });

// ---- lifecycle churn fuzz ------------------------------------------------------

/**
 * Randomized device-lifecycle interleavings: a seeded Rng drives a
 * NIC through bursts of mapped sends, surprise unplugs, detached DMA
 * attempts, and replugs, in every protection mode, with fault
 * injection disarmed. After every removal cleanup the leak detector
 * must come back clean, every detached access must produce exactly
 * one typed record, and the final quiesce must leave nothing behind.
 * RIO_CHURN_EXTRA_SEEDS appends seeds (the lifecycle CI soak).
 */
struct LifecycleFuzzParam
{
    dma::ProtectionMode mode;
    u64 seed;
    int steps;
};

std::vector<LifecycleFuzzParam>
lifecycleFuzzParams()
{
    std::vector<u64> seeds = {2, 17, 301};
    appendExtraSeeds(seeds, "RIO_CHURN_EXTRA_SEEDS");
    const std::array<dma::ProtectionMode, 7> modes = {
        dma::ProtectionMode::kStrict,   dma::ProtectionMode::kStrictPlus,
        dma::ProtectionMode::kDefer,    dma::ProtectionMode::kDeferPlus,
        dma::ProtectionMode::kRiommuNc, dma::ProtectionMode::kRiommu,
        dma::ProtectionMode::kNone};
    std::vector<LifecycleFuzzParam> params;
    for (dma::ProtectionMode mode : modes)
        for (u64 seed : seeds)
            params.push_back({mode, seed, 60});
    return params;
}

class LifecycleFuzz : public ::testing::TestWithParam<LifecycleFuzzParam>
{
};

TEST_P(LifecycleFuzz, RandomUnplugReplugPointsLeakNothing)
{
    const auto [mode, seed, steps] = GetParam();
    Rng rng(seed);
    des::Simulator sim;
    nic::NicProfile profile; // small rings for fast runs
    profile.name = "fuzz";
    profile.tx_buffers_per_packet = 1;
    profile.rx_rings = 1;
    profile.rx_ring_entries = 8;
    profile.tx_ring_entries = 64;
    profile.tx_completion_batch = 8;
    sys::Machine m(sim, mode, profile);
    m.bringUp();

    u64 expected_detach_faults = 0;
    u64 unplugs = 0, replugs = 0;
    for (int i = 0; i < steps; ++i) {
        if (m.nic().isUp()) {
            if (rng.chance(0.3)) {
                // Surprise unplug mid-burst, at a random ring point.
                const u64 pre = rng.below(24);
                m.core().post([&, pre] {
                    for (u64 j = 0;
                         j < pre && m.nic().txSpacePackets(1000) > 0;
                         ++j) {
                        net::Packet pkt;
                        pkt.payload_bytes = 1000;
                        ASSERT_TRUE(m.nic().sendPacket(pkt).isOk());
                    }
                    m.surpriseUnplugNic(0);
                    m.removeCleanupNic(0);
                });
                sim.run();
                ++unplugs;
                const dma::LeakReport rep =
                    m.ctx().checkHandleLeaks(m.handle());
                ASSERT_TRUE(rep.clean())
                    << "step " << i << ": " << rep.toString();
            } else {
                const u64 burst = rng.below(16);
                m.core().post([&, burst] {
                    for (u64 j = 0;
                         j < burst && m.nic().txSpacePackets(1000) > 0;
                         ++j) {
                        net::Packet pkt;
                        pkt.payload_bytes = 1000;
                        ASSERT_TRUE(m.nic().sendPacket(pkt).isOk());
                    }
                });
                sim.run();
            }
        } else {
            if (rng.chance(0.4)) {
                // DMA through the detached BDF: one typed record per
                // attempt, never undefined behaviour.
                u64 v = 0;
                Status s = m.handle().deviceRead(0x4000, &v, 8);
                EXPECT_EQ(s.code(), ErrorCode::kDetached);
                ++expected_detach_faults;
            } else {
                m.core().post([&] {
                    Status rs = m.replugNic(0);
                    ASSERT_TRUE(rs.isOk()) << rs.toString();
                });
                sim.run();
                ++replugs;
            }
        }
    }
    EXPECT_EQ(m.handle().detachFaults().size(), expected_detach_faults);
    for (const auto &rec : m.handle().detachFaults())
        EXPECT_EQ(rec.reason, iommu::FaultReason::kDetached);
    EXPECT_EQ(m.lifecycleStats().surprise_unplugs, unplugs);
    EXPECT_EQ(m.lifecycleStats().replugs, replugs);

    // Orderly exit from whatever state the walk ended in.
    if (!m.nic().isUp()) {
        m.core().post([&] { ASSERT_TRUE(m.replugNic(0).isOk()); });
        sim.run();
    }
    ASSERT_TRUE(m.quiesceNic(0).isOk());
    const dma::LeakReport final_rep = m.ctx().checkHandleLeaks(m.handle());
    EXPECT_TRUE(final_rep.clean()) << final_rep.toString();
    EXPECT_EQ(m.handle().liveMappings(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, LifecycleFuzz,
    ::testing::ValuesIn(lifecycleFuzzParams()),
    [](const ::testing::TestParamInfo<LifecycleFuzzParam> &info) {
        std::string name = dma::modeName(info.param.mode);
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name + "_s" + std::to_string(info.param.seed);
    });

// ---- virtualization fuzz -------------------------------------------------------

/**
 * Randomized guest campaigns: boot a guest under each vIOMMU strategy
 * (emulated / shadow / nested), drive a random interleaving of mapped
 * NIC bursts, direct map/DMA/unmap round trips, and surprise
 * unplug/replug cycles, then tear the guest down. Invariants: DMA data
 * written through the handle reads back intact (the stage-2 identity
 * never corrupts the data path), the shadow table mirrors the guest
 * radix table at every step, vmexit counts only grow, the leak
 * detector stays clean across every removal, and the final quiesce
 * leaves nothing behind. RIO_VIRT_EXTRA_SEEDS appends seeds (CI soak).
 */
struct VirtFuzzParam
{
    dma::ProtectionMode mode;
    virt::Platform platform;
    u64 seed;
    int steps;
};

std::vector<VirtFuzzParam>
virtFuzzParams()
{
    std::vector<u64> seeds = {13, 59, 277};
    appendExtraSeeds(seeds, "RIO_VIRT_EXTRA_SEEDS");
    const std::array<virt::Platform, 3> platforms = {
        virt::Platform::kEmulated, virt::Platform::kShadow,
        virt::Platform::kNested};
    // One radix mode, one magazine mode, one rIOMMU mode: the three
    // translation structures a strategy can trap on.
    const std::array<dma::ProtectionMode, 3> modes = {
        dma::ProtectionMode::kStrict, dma::ProtectionMode::kDeferPlus,
        dma::ProtectionMode::kRiommu};
    std::vector<VirtFuzzParam> params;
    for (dma::ProtectionMode mode : modes)
        for (virt::Platform platform : platforms)
            for (u64 seed : seeds)
                params.push_back({mode, platform, seed, 40});
    return params;
}

class VirtFuzz : public ::testing::TestWithParam<VirtFuzzParam>
{
};

TEST_P(VirtFuzz, GuestBurstsAndChurnStayCoherent)
{
    const auto [mode, platform, seed, steps] = GetParam();
    Rng rng(seed);
    des::Simulator sim;
    nic::NicProfile profile;
    profile.name = "fuzz";
    profile.tx_buffers_per_packet = 1;
    profile.rx_rings = 1;
    profile.rx_ring_entries = 8;
    profile.tx_ring_entries = 64;
    profile.tx_completion_batch = 8;
    sys::Machine m(sim, mode, profile);
    virt::Guest guest(m, platform); // guest boot: binds + hypercalls
    m.bringUp();

    auto *baseline = dynamic_cast<dma::BaselineDmaHandle *>(&m.handle());
    auto checkShadowMirror = [&] {
        if (platform == virt::Platform::kShadow && baseline) {
            ASSERT_NE(guest.shadowTable(0), nullptr);
            EXPECT_EQ(guest.shadowTable(0)->mappedPages(),
                      baseline->pageTable().mappedPages());
        }
    };

    u64 exits_seen = 0;
    for (int i = 0; i < steps; ++i) {
        const int action = static_cast<int>(rng.below(3));
        if (action == 0 && m.nic().isUp()) {
            const u64 burst = rng.below(12);
            m.core().post([&, burst] {
                for (u64 j = 0;
                     j < burst && m.nic().txSpacePackets(1000) > 0; ++j) {
                    net::Packet pkt;
                    pkt.payload_bytes = 1000;
                    ASSERT_TRUE(m.nic().sendPacket(pkt).isOk());
                }
            });
            sim.run();
        } else if (action == 1) {
            // Direct mapped-DMA round trip; data must survive the
            // strategy's translation path bit for bit. rid 1 is the
            // Tx-buffer ring (rid 0 holds the static descriptor-ring
            // mappings and is full after bringUp in rIOMMU modes).
            const PhysAddr buf = m.ctx().memory().allocFrame();
            auto mapping = m.handle().map(
                1, buf, 256 + static_cast<u32>(rng.below(1024)),
                DmaDir::kBidir);
            if (mapping.isOk()) {
                const u64 v = 0xfeed0000 + static_cast<u64>(i);
                ASSERT_TRUE(m.handle()
                                .deviceWrite(
                                    mapping.value().device_addr, &v, 8)
                                .isOk());
                u64 back = 0;
                ASSERT_TRUE(m.handle()
                                .deviceRead(
                                    mapping.value().device_addr, &back,
                                    8)
                                .isOk());
                EXPECT_EQ(back, v) << "step " << i;
                ASSERT_TRUE(m.handle()
                                .unmap(mapping.value(), rng.chance(0.5))
                                .isOk());
            } else {
                // Mid-outage (detached) or the ring is momentarily
                // full of in-flight Tx buffers (overflow) — both are
                // legitimate, recoverable outcomes.
                EXPECT_TRUE(mapping.status().code() ==
                                ErrorCode::kDetached ||
                            mapping.status().code() ==
                                ErrorCode::kOverflow)
                    << mapping.status().toString();
            }
        } else {
            if (m.nic().isUp()) {
                m.core().post([&] {
                    m.surpriseUnplugNic(0);
                    m.removeCleanupNic(0);
                });
                sim.run();
                ASSERT_TRUE(
                    m.ctx().checkHandleLeaks(m.handle()).clean())
                    << "step " << i;
            } else {
                m.core().post(
                    [&] { ASSERT_TRUE(m.replugNic(0).isOk()); });
                sim.run();
            }
        }
        checkShadowMirror();
        // Exits only grow, and the aggregate stats stay coherent.
        EXPECT_GE(guest.exitModel().exits(), exits_seen);
        exits_seen = guest.exitModel().exits();
        EXPECT_EQ(guest.stats().vm_exits, exits_seen);
    }

    // Teardown: orderly quiesce inside the guest, nothing left over.
    if (!m.nic().isUp()) {
        m.core().post([&] { ASSERT_TRUE(m.replugNic(0).isOk()); });
        sim.run();
    }
    ASSERT_TRUE(m.quiesceNic(0).isOk());
    const dma::LeakReport rep = m.ctx().checkHandleLeaks(m.handle());
    EXPECT_TRUE(rep.clean()) << rep.toString();
    checkShadowMirror();
    if (dma::modeUsesRiommu(mode) &&
        platform != virt::Platform::kShadow) {
        EXPECT_GT(guest.stats().hypercalls, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesModesSeeds, VirtFuzz,
    ::testing::ValuesIn(virtFuzzParams()),
    [](const ::testing::TestParamInfo<VirtFuzzParam> &info) {
        std::string name = dma::modeName(info.param.mode);
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name + "_" +
               virt::platformName(info.param.platform) + "_s" +
               std::to_string(info.param.seed);
    });

// ---- cluster fabric fuzz -------------------------------------------------------

/**
 * Randomized cluster campaigns: a 2-3 machine RDMA fabric under a
 * seed-derived mix of connection churn, incast bursts into machine 0,
 * Zipf-skewed traffic, and (half the seeds) translation-fault
 * injection — the combination that exercises QP slot recycling, the
 * kClosing drain path, NAK completions, and cross-lane mail ordering
 * at once. Each campaign runs twice, on 1 worker thread and on 3, and
 * the two reports must agree field for field (the parallel engine's
 * determinism contract extended to the full RDMA stack). Invariants
 * on top: every successful post produces exactly one CQE (ok or
 * error), fault-free configs complete error-free, churn configs
 * actually tear down and re-establish QPs, and the leak detector is
 * clean on every machine after quiesce.
 * RIO_CLUSTER_EXTRA_SEEDS appends seeds (the sanitize CI soak).
 */
struct ClusterFuzzParam
{
    dma::ProtectionMode mode;
    u64 seed;
};

std::vector<ClusterFuzzParam>
clusterFuzzParams()
{
    std::vector<u64> seeds = {5, 23, 411};
    appendExtraSeeds(seeds, "RIO_CLUSTER_EXTRA_SEEDS");
    // One radix mode, one magazine mode, one rIOMMU mode — the three
    // translation structures the remote-access path can stress.
    const std::array<dma::ProtectionMode, 3> modes = {
        dma::ProtectionMode::kStrict, dma::ProtectionMode::kDeferPlus,
        dma::ProtectionMode::kRiommu};
    std::vector<ClusterFuzzParam> params;
    for (dma::ProtectionMode mode : modes)
        for (u64 seed : seeds)
            params.push_back({mode, seed});
    return params;
}

struct ClusterCampaign
{
    workloads::FleetReport rep;
    double fault_rate = 0;
    u32 churn_period = 0;
};

/** Derive the whole campaign shape from @p seed (identically for any
 * @p threads — only the schedule may differ) and run it. */
ClusterCampaign
runClusterCampaign(dma::ProtectionMode mode, u64 seed, unsigned threads)
{
    Rng shape(seed * 0xD1B54A32D192ED03ULL + 11);
    workloads::FleetParams p;
    p.connections = static_cast<u32>(8u << shape.below(4)); // 8..64
    p.zipf_theta = 0.5 + 0.1 * static_cast<double>(shape.below(8));
    p.read_fraction = 0.1 * static_cast<double>(shape.below(5));
    p.credits = static_cast<u32>(shape.range(4, 12));
    p.warmup_ops = 50;
    p.measure_ops = 300;
    p.incast_period_ops = static_cast<u32>(shape.range(20, 50));
    p.incast_burst = static_cast<u32>(shape.range(2, 5));
    p.churn_period_ops = static_cast<u32>(shape.range(25, 75));
    p.seed = seed * 77 + 1;

    sys::ClusterConfig cfg;
    cfg.machines = static_cast<unsigned>(shape.range(2, 3));
    cfg.threads = threads;
    cfg.mode = mode;
    cfg.max_qps = workloads::fleetMaxQps(p, cfg.machines);
    if (dma::modeUsesRiommu(mode)) {
        cfg.rdcache.model_fetch = true; // fetch model riding along
        cfg.rdcache.hot_entries = 64;
    }
    if (dma::modeUsesMagazineAllocator(mode))
        cfg.iova_cache_rounds = 8; // per-core depot pair in play
    cfg.fault_rate = shape.chance(0.5) ? 0.02 : 0.0;
    cfg.fault_seed = seed + 9;

    ClusterCampaign out;
    out.fault_rate = cfg.fault_rate;
    out.churn_period = p.churn_period_ops;
    sys::Cluster cluster(cfg);
    out.rep = workloads::runFleet(cluster, p);
    return out;
}

class ClusterFuzz : public ::testing::TestWithParam<ClusterFuzzParam>
{
};

TEST_P(ClusterFuzz, ChurnIncastFaultsAgreeAcrossThreadCounts)
{
    const auto [mode, seed] = GetParam();
    const ClusterCampaign c1 = runClusterCampaign(mode, seed, 1);
    const ClusterCampaign c3 = runClusterCampaign(mode, seed, 3);
    const workloads::FleetReport &r1 = c1.rep;
    const workloads::FleetReport &r3 = c3.rep;

    // Nothing left mapped on any machine after quiesce.
    EXPECT_TRUE(r1.leaks_clean);
    EXPECT_TRUE(r3.leaks_clean);

    // Conservation: one CQE per successful post, ok or error — the
    // drain at end of run and in the kClosing path loses nothing.
    EXPECT_EQ(r1.completions, r1.posts);
    EXPECT_EQ(r3.completions, r3.posts);
    EXPECT_EQ(r1.comp_errors,
              r1.remote_faults + r1.local_fault_drops);

    // The campaign actually exercised its levers.
    EXPECT_GT(r1.measured_ops, 0u);
    EXPECT_GT(r1.teardowns, 0u) << "churn period " << c1.churn_period
                                << " never tore a QP down";
    if (c1.fault_rate == 0.0) {
        EXPECT_EQ(r1.comp_errors, 0u);
        EXPECT_EQ(r1.remote_faults, 0u);
        EXPECT_EQ(r1.local_fault_drops, 0u);
    }

    // Thread-count invariance, field for field.
    EXPECT_EQ(r1.measured_ops, r3.measured_ops);
    EXPECT_EQ(r1.total_ops, r3.total_ops);
    EXPECT_EQ(r1.measured_cycles, r3.measured_cycles);
    EXPECT_DOUBLE_EQ(r1.cycles_per_op, r3.cycles_per_op);
    EXPECT_EQ(r1.posts, r3.posts);
    EXPECT_EQ(r1.posts_blocked, r3.posts_blocked);
    EXPECT_EQ(r1.completions, r3.completions);
    EXPECT_EQ(r1.comp_errors, r3.comp_errors);
    EXPECT_EQ(r1.remote_faults, r3.remote_faults);
    EXPECT_EQ(r1.local_fault_drops, r3.local_fault_drops);
    EXPECT_EQ(r1.connects, r3.connects);
    EXPECT_EQ(r1.teardowns, r3.teardowns);
    EXPECT_EQ(r1.eob_unmaps, r3.eob_unmaps);
    EXPECT_DOUBLE_EQ(r1.avg_burst, r3.avg_burst);
    EXPECT_EQ(r1.riotlb.invalidations, r3.riotlb.invalidations);
    EXPECT_EQ(r1.riotlb.walks, r3.riotlb.walks);
    EXPECT_EQ(r1.rdcache.fetches, r3.rdcache.fetches);
    EXPECT_EQ(r1.rdcache.hot_hits, r3.rdcache.hot_hits);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, ClusterFuzz,
    ::testing::ValuesIn(clusterFuzzParams()),
    [](const ::testing::TestParamInfo<ClusterFuzzParam> &info) {
        std::string name = dma::modeName(info.param.mode);
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name + "_s" + std::to_string(info.param.seed);
    });

/**
 * WireFuzz: the ClusterFuzz campaign on a hostile wire — seeded
 * drop/dup/delay injection, bounded ingress ports under incast,
 * hard-abort churn (app death stranding in-flight data), and the
 * RoCE-style reliability layer recovering behind it all. Same
 * determinism contract: each campaign runs on 1 and 3 worker threads
 * and the reports must agree field for field, now including the
 * retransmit/RTO/QP-error and late-arrival counters. Invariants on
 * top: CQE conservation survives loss (every post completes, ok or
 * error), the non-deferring modes leave no stale window
 * (late_landed == 0), and quiesce is leak-free on every machine.
 * RIO_WIRE_EXTRA_SEEDS appends seeds (the wire CI soak).
 */
std::vector<ClusterFuzzParam>
wireFuzzParams()
{
    std::vector<u64> seeds = {7, 31, 502};
    appendExtraSeeds(seeds, "RIO_WIRE_EXTRA_SEEDS");
    // One radix mode, one deferring mode (the stale-window side of
    // the late-arrival ledger), one rIOMMU mode.
    const std::array<dma::ProtectionMode, 3> modes = {
        dma::ProtectionMode::kStrict, dma::ProtectionMode::kDeferPlus,
        dma::ProtectionMode::kRiommu};
    std::vector<ClusterFuzzParam> params;
    for (dma::ProtectionMode mode : modes)
        for (u64 seed : seeds)
            params.push_back({mode, seed});
    return params;
}

/** Derive the storm shape from @p seed (identically for any
 * @p threads) and run it. */
workloads::FleetReport
runWireCampaign(dma::ProtectionMode mode, u64 seed, unsigned threads)
{
    Rng shape(seed * 0x9E3779B97F4A7C15ULL + 3);
    workloads::FleetParams p;
    p.connections = static_cast<u32>(8u << shape.below(3)); // 8..32
    p.credits = static_cast<u32>(shape.range(4, 12));
    p.warmup_ops = 50;
    p.measure_ops = 300;
    p.incast_period_ops = static_cast<u32>(shape.range(20, 50));
    p.incast_burst = static_cast<u32>(shape.range(2, 5));
    p.churn_period_ops = static_cast<u32>(shape.range(25, 75));
    p.churn_abort_fraction = shape.chance(0.5) ? 0.5 : 0.0;
    p.seed = seed * 131 + 5;

    sys::ClusterConfig cfg;
    cfg.machines = static_cast<unsigned>(shape.range(2, 3));
    cfg.threads = threads;
    cfg.mode = mode;
    cfg.max_qps = workloads::fleetMaxQps(p, cfg.machines);
    const double loss =
        0.01 * static_cast<double>(shape.range(1, 5)); // 1%..5%
    cfg.wire.drop_rate = loss;
    cfg.wire.dup_rate = std::min(0.25, 3 * loss);
    cfg.wire.delay_rate = std::min(0.5, 10 * loss);
    cfg.wire.delay_max_ns = 20000 + 10000 * shape.below(5);
    if (shape.chance(0.5))
        cfg.wire.ingress_cap = static_cast<u32>(shape.range(8, 24));
    cfg.reliability.enabled = true;

    sys::Cluster cluster(cfg);
    return workloads::runFleet(cluster, p);
}

class WireFuzz : public ::testing::TestWithParam<ClusterFuzzParam>
{
};

TEST_P(WireFuzz, LossyFabricAgreesAcrossThreadCounts)
{
    const auto [mode, seed] = GetParam();
    const workloads::FleetReport r1 = runWireCampaign(mode, seed, 1);
    const workloads::FleetReport r3 = runWireCampaign(mode, seed, 3);

    EXPECT_TRUE(r1.leaks_clean);
    EXPECT_TRUE(r3.leaks_clean);

    // Conservation under loss: a dropped packet either recovers by
    // retransmit or flushes as an error CQE — no post may vanish.
    EXPECT_EQ(r1.completions, r1.posts);
    EXPECT_EQ(r3.completions, r3.posts);

    // The storm actually stormed, and the recovery machinery ran.
    EXPECT_GT(r1.measured_ops, 0u);
    EXPECT_GT(r1.wire_drops, 0u);
    EXPECT_GT(r1.retransmits, 0u);

    // The protection claim, tiered. The deferring mode leaves its
    // stale-translation window open (batched flush). strict closes
    // that window but stays exposed to IOVA *reuse*: under churn the
    // freed range can be re-allocated to a live mapping, and a stale
    // rkey then translates — and lands — through it. Only the
    // ring-coded rIOVAs close both windows structurally: a recycled
    // QP slot regenerates the identical address (a matching rkey IS
    // the current translation), and a non-matching one can belong to
    // no other ring — it faults.
    if (dma::modeUsesRiommu(mode)) {
        EXPECT_EQ(r1.late_landed, 0u);
        EXPECT_EQ(r3.late_landed, 0u);
    }

    // Thread-count invariance, field for field — now including the
    // reliability and wire-port counters.
    EXPECT_EQ(r1.measured_ops, r3.measured_ops);
    EXPECT_EQ(r1.total_ops, r3.total_ops);
    EXPECT_EQ(r1.measured_cycles, r3.measured_cycles);
    EXPECT_DOUBLE_EQ(r1.cycles_per_op, r3.cycles_per_op);
    EXPECT_EQ(r1.posts, r3.posts);
    EXPECT_EQ(r1.posts_blocked, r3.posts_blocked);
    EXPECT_EQ(r1.completions, r3.completions);
    EXPECT_EQ(r1.comp_errors, r3.comp_errors);
    EXPECT_EQ(r1.connects, r3.connects);
    EXPECT_EQ(r1.teardowns, r3.teardowns);
    EXPECT_EQ(r1.retransmits, r3.retransmits);
    EXPECT_EQ(r1.rto_fires, r3.rto_fires);
    EXPECT_EQ(r1.nak_seq, r3.nak_seq);
    EXPECT_EQ(r1.qp_errors, r3.qp_errors);
    EXPECT_EQ(r1.qp_error_recovered, r3.qp_error_recovered);
    EXPECT_EQ(r1.late_arrivals, r3.late_arrivals);
    EXPECT_EQ(r1.late_faulted, r3.late_faulted);
    EXPECT_EQ(r1.late_landed, r3.late_landed);
    EXPECT_EQ(r1.wire_drops, r3.wire_drops);
    EXPECT_EQ(r1.wire_dups, r3.wire_dups);
    EXPECT_EQ(r1.wire_delays, r3.wire_delays);
    EXPECT_EQ(r1.wire_congestion_drops, r3.wire_congestion_drops);
    EXPECT_EQ(r1.wire_peak_queue, r3.wire_peak_queue);
    EXPECT_EQ(r1.p50_latency_ns, r3.p50_latency_ns);
    EXPECT_EQ(r1.p99_latency_ns, r3.p99_latency_ns);
    EXPECT_EQ(r1.end_ns, r3.end_ns);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, WireFuzz, ::testing::ValuesIn(wireFuzzParams()),
    [](const ::testing::TestParamInfo<ClusterFuzzParam> &info) {
        std::string name = dma::modeName(info.param.mode);
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name + "_s" + std::to_string(info.param.seed);
    });

/**
 * MigrateFuzz: seeded live migrations over a hostile fabric — the
 * shape (platform, guest size, dirty rate, loss, fleet width, and
 * whether the migration stream's QP is hard-aborted mid-round) all
 * derive from the seed. Invariants: the migration always completes,
 * the target arena is byte-identical to the source (no page lost,
 * forked, or double-applied, whatever the wire did), protected modes
 * land zero post-migration strays, both guest and hypervisor handles
 * quiesce leak-free, and the whole report agrees field for field
 * between 1 and 2 worker threads. RIO_MIGRATE_EXTRA_SEEDS appends
 * seeds (the migration CI soak).
 */
std::vector<ClusterFuzzParam>
migrateFuzzParams()
{
    std::vector<u64> seeds = {11, 47, 1009};
    appendExtraSeeds(seeds, "RIO_MIGRATE_EXTRA_SEEDS");
    const std::array<dma::ProtectionMode, 3> modes = {
        dma::ProtectionMode::kStrict, dma::ProtectionMode::kDeferPlus,
        dma::ProtectionMode::kRiommu};
    std::vector<ClusterFuzzParam> params;
    for (dma::ProtectionMode mode : modes)
        for (u64 seed : seeds)
            params.push_back({mode, seed});
    return params;
}

struct MigrateCampaign
{
    migrate::MigrationReport rep;
    u64 src_hash = 0;
    u64 dst_hash = 0;
    u64 stray_arrivals = 0;
    u64 stray_faulted = 0;
    u64 stray_landed = 0;
    bool leaks_clean = false;
    Nanos src_now = 0;
    Nanos dst_now = 0;
};

MigrateCampaign
runMigrateCampaign(dma::ProtectionMode mode, u64 seed, unsigned threads)
{
    Rng shape(seed * 0x9E3779B97F4A7C15ULL + 17);
    const std::array<virt::Platform, 4> platforms = {
        virt::Platform::kBare, virt::Platform::kEmulated,
        virt::Platform::kShadow, virt::Platform::kNested};
    const virt::Platform platform = platforms[shape.below(4)];
    const u64 pages = 256u << shape.below(3); // 256..1024
    const double dirty = 100.0 * static_cast<double>(shape.range(0, 6));
    const double loss = 0.01 * static_cast<double>(shape.range(0, 4));
    const unsigned app_qps = static_cast<unsigned>(shape.range(2, 6));
    const bool abort_stream = shape.chance(0.5);
    const Nanos abort_at = 20000 * shape.range(1, 8);

    sys::ClusterConfig cfg;
    cfg.machines = 2;
    cfg.threads = threads;
    cfg.mode = mode;
    cfg.max_qps = app_qps + 4;
    cfg.migration = true;
    cfg.reliability.enabled = true;
    if (loss > 0.0) {
        cfg.wire.drop_rate = loss;
        cfg.wire.dup_rate = std::min(0.25, 3 * loss);
        cfg.wire.delay_rate = std::min(0.5, 10 * loss);
        cfg.wire.delay_max_ns = 60000;
    }
    sys::Cluster cl(cfg);

    std::unique_ptr<virt::Guest> sg, dg;
    unsigned src_binding = 0;
    if (platform != virt::Platform::kBare) {
        sg = std::make_unique<virt::Guest>(cl.machine(0), platform);
        dg = std::make_unique<virt::Guest>(cl.machine(1), platform);
        src_binding = sg->bindHandle(cl.handle(0), cl.machine(0).core(0));
        (void)dg->bindHandle(cl.handle(1), cl.machine(1).core(0));
    }
    cl.bringUp();

    bool stray_up = false;
    u32 stray_qp = 0;
    cl.machine(0).core(0).post([&] {
        for (unsigned q = 0; q < app_qps; ++q)
            (void)cl.nic(0).connect(1, nullptr);
    });
    cl.machine(1).core(0).post([&] {
        (void)cl.nic(1).connect(0, [&](u32 qp, bool ok) {
            stray_qp = qp;
            stray_up = ok;
        });
    });
    cl.run();

    migrate::MigrateConfig mc;
    mc.src = 0;
    mc.dst = 1;
    mc.platform = platform;
    mc.guest_pages = pages;
    mc.dirty_pages_per_ms = dirty;
    mc.dirty_seed = seed * 131 + 7;
    mc.converge_dirty = 16;
    migrate::Migrator mig(cl, mc);
    mig.setGuests(sg.get(), dg.get(), src_binding);
    mig.start();
    // Open-loop stray fire at the source's old fleet, outliving the
    // migration; plus the seeded mid-round stream abort.
    struct StrayState
    {
        sys::Cluster *cl;
        u32 qp;
        u64 remaining;
    };
    struct StrayTick
    {
        static void go(const std::shared_ptr<StrayState> &s)
        {
            if (s->remaining == 0)
                return;
            --s->remaining;
            (void)s->cl->nic(1).postWrite(s->qp, 256, 0);
            s->cl->lane(1).sim().scheduleAfter(8000, [s] { go(s); });
        }
    };
    auto stray = std::make_shared<StrayState>(
        StrayState{&cl, stray_qp, stray_up ? pages * 4 : 0});
    if (stray->remaining > 0)
        cl.lane(1).sim().scheduleAfter(8000,
                                       [stray] { StrayTick::go(stray); });
    if (abort_stream) {
        cl.lane(0).sim().scheduleAfter(abort_at, [&cl] {
            cl.machine(0).core(0).post([&cl] {
                for (u32 q = 0; q < cl.migNic(0).maxQps(); ++q)
                    (void)cl.migNic(0).abortQp(q);
            });
        });
    }
    cl.run();

    MigrateCampaign out;
    out.rep = mig.report();
    out.src_hash = mig.arenaHash(false);
    out.dst_hash = mig.arenaHash(true);
    const rdma::RdmaStats &s = cl.nic(0).stats();
    out.stray_arrivals = s.migrated_away_arrivals;
    out.stray_faulted = s.migrated_away_faulted;
    out.stray_landed = s.migrated_away_landed;
    out.src_now = cl.lane(0).sim().now();
    out.dst_now = cl.lane(1).sim().now();
    mig.cleanup();
    cl.quiesce();
    out.leaks_clean = true;
    for (unsigned m = 0; m < 2; ++m) {
        out.leaks_clean &= cl.checkLeaks(m).clean();
        out.leaks_clean &= cl.checkMigLeaks(m).clean();
    }
    return out;
}

class MigrateFuzz : public ::testing::TestWithParam<ClusterFuzzParam>
{
};

TEST_P(MigrateFuzz, HostileMigrationConvergesIdenticallyAcrossThreads)
{
    const auto [mode, seed] = GetParam();
    const MigrateCampaign c1 = runMigrateCampaign(mode, seed, 1);
    const MigrateCampaign c2 = runMigrateCampaign(mode, seed, 2);

    EXPECT_TRUE(c1.rep.completed);
    EXPECT_FALSE(c1.rep.failed);
    EXPECT_EQ(c1.src_hash, c1.dst_hash) << "guest RAM diverged";
    EXPECT_TRUE(c1.leaks_clean);
    EXPECT_TRUE(c2.leaks_clean);
    EXPECT_GE(c1.rep.pages_shipped, 1u);
    if (dma::modeUsesRiommu(mode)) {
        EXPECT_EQ(c1.stray_landed, 0u);
    }

    // Thread-count invariance, field for field.
    EXPECT_EQ(c1.rep.rounds, c2.rep.rounds);
    EXPECT_EQ(c1.rep.pages_shipped, c2.rep.pages_shipped);
    EXPECT_EQ(c1.rep.pages_reshipped, c2.rep.pages_reshipped);
    EXPECT_EQ(c1.rep.page_naks, c2.rep.page_naks);
    EXPECT_EQ(c1.rep.state_chunks, c2.rep.state_chunks);
    EXPECT_EQ(c1.rep.state_bytes, c2.rep.state_bytes);
    EXPECT_EQ(c1.rep.mappings_replayed, c2.rep.mappings_replayed);
    EXPECT_EQ(c1.rep.reg_hypercalls, c2.rep.reg_hypercalls);
    EXPECT_EQ(c1.rep.live_rings, c2.rep.live_rings);
    EXPECT_EQ(c1.rep.stream_qp_errors, c2.rep.stream_qp_errors);
    EXPECT_EQ(c1.rep.dirtier_writes, c2.rep.dirtier_writes);
    EXPECT_EQ(c1.rep.blackout_ns, c2.rep.blackout_ns);
    EXPECT_EQ(c1.rep.total_ns, c2.rep.total_ns);
    EXPECT_EQ(c1.src_hash, c2.src_hash);
    EXPECT_EQ(c1.dst_hash, c2.dst_hash);
    EXPECT_EQ(c1.stray_arrivals, c2.stray_arrivals);
    EXPECT_EQ(c1.stray_faulted, c2.stray_faulted);
    EXPECT_EQ(c1.stray_landed, c2.stray_landed);
    EXPECT_EQ(c1.src_now, c2.src_now);
    EXPECT_EQ(c1.dst_now, c2.dst_now);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, MigrateFuzz,
    ::testing::ValuesIn(migrateFuzzParams()),
    [](const ::testing::TestParamInfo<ClusterFuzzParam> &info) {
        std::string name = dma::modeName(info.param.mode);
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name + "_s" + std::to_string(info.param.seed);
    });

// ---- overflow under pressure ---------------------------------------------------

TEST(RiommuFuzzEdge, FullRingAlwaysOverflowsNeverCorrupts)
{
    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    riommu::Riommu riommu(pm, cost);
    riommu::RDevice dev(riommu, pm, Bdf{0, 4, 0}, std::vector<u32>{4},
                        true, cost, nullptr);
    const PhysAddr pa = pm.allocFrame();
    std::vector<riommu::RIova> live;
    for (int i = 0; i < 4; ++i)
        live.push_back(dev.map(0, pa, 8, DmaDir::kBidir).value());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(dev.map(0, pa, 8, DmaDir::kBidir).status().code(),
                  ErrorCode::kOverflow);
    // Everything mapped before the overflow storm still translates.
    for (const auto &iova : live) {
        EXPECT_TRUE(
            riommu.translate(Bdf{0, 4, 0}, iova, Access::kRead, 1)
                .isOk());
    }
}

} // namespace
} // namespace rio
