/**
 * @file
 * Randomized cross-checking of the translation hardware against
 * simple reference models: thousands of random map/unmap/access
 * operations where every translate() outcome (address AND
 * fault-or-not) must agree with an oracle built from plain maps.
 */
#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <unordered_map>

#include "base/rng.h"
#include "dma/dma_context.h"
#include "riommu/rdevice.h"

namespace rio {
namespace {

using iommu::Access;
using iommu::Bdf;
using iommu::DmaDir;

struct FuzzParam
{
    u64 seed;
    int ops;
};

// ---- baseline IOMMU vs oracle ------------------------------------------------

class IommuFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(IommuFuzz, TranslateAgreesWithOracle)
{
    const auto [seed, ops] = GetParam();
    Rng rng(seed);
    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    iommu::Iommu iommu(pm, cost);
    iommu::IoPageTable table(pm, false, cost, nullptr);
    const Bdf bdf{0, 3, 0};
    iommu.attachDevice(bdf, &table);

    struct Entry
    {
        u64 phys_pfn;
        bool writable;
    };
    std::unordered_map<u64, Entry> oracle; // iova pfn -> entry

    for (int i = 0; i < ops; ++i) {
        const u64 pfn = rng.below(256); // small space: collisions likely
        const int action = static_cast<int>(rng.below(4));
        if (action == 0) { // map
            const bool writable = rng.chance(0.5);
            const u64 phys = 0x100 + rng.below(1000);
            Status s = table.map(pfn, phys,
                                 writable ? DmaDir::kBidir
                                          : DmaDir::kToDevice);
            if (oracle.count(pfn)) {
                EXPECT_EQ(s.code(), ErrorCode::kExists);
            } else {
                ASSERT_TRUE(s.isOk());
                oracle[pfn] = {phys, writable};
            }
        } else if (action == 1) { // unmap
            Status s = table.unmap(pfn);
            EXPECT_EQ(s.isOk(), oracle.erase(pfn) == 1);
            iommu.invalidateIotlbEntry(bdf, pfn); // strict semantics
        } else { // access (read or write)
            const Access acc =
                rng.chance(0.5) ? Access::kRead : Access::kWrite;
            const u64 offset = rng.below(kPageSize);
            auto t = iommu.translate(bdf, (pfn << kPageShift) | offset,
                                     acc);
            auto it = oracle.find(pfn);
            const bool should_ok =
                it != oracle.end() &&
                (acc == Access::kRead || it->second.writable);
            ASSERT_EQ(t.isOk(), should_ok)
                << "op " << i << " pfn " << pfn;
            if (should_ok) {
                EXPECT_EQ(t.value().pa,
                          (it->second.phys_pfn << kPageShift) | offset);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IommuFuzz,
                         ::testing::Values(FuzzParam{11, 4000},
                                           FuzzParam{22, 4000},
                                           FuzzParam{33, 8000},
                                           FuzzParam{44, 2000}));

// ---- rIOMMU ring vs oracle ----------------------------------------------------

class RiommuFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(RiommuFuzz, RingStateAgreesWithOracle)
{
    const auto [seed, ops] = GetParam();
    Rng rng(seed);
    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    riommu::Riommu riommu(pm, cost);
    const Bdf bdf{0, 4, 0};
    constexpr u32 kRing = 32;
    riommu::RDevice dev(riommu, pm, bdf, std::vector<u32>{kRing}, true,
                        cost, nullptr);
    const PhysAddr pool = pm.allocContiguous(64 * kPageSize);

    struct Live
    {
        riommu::RIova iova;
        PhysAddr pa;
        u32 size;
        bool writable;
    };
    std::deque<Live> fifo; // ring semantics: map and unmap FIFO

    for (int i = 0; i < ops; ++i) {
        const int action = static_cast<int>(rng.below(3));
        if (action == 0 && fifo.size() < kRing) { // map
            const u32 size = 1 + static_cast<u32>(rng.below(4096));
            const PhysAddr pa = pool + rng.below(60 * kPageSize);
            const bool writable = rng.chance(0.5);
            auto m = dev.map(0, pa, size,
                             writable ? DmaDir::kBidir
                                      : DmaDir::kToDevice);
            ASSERT_TRUE(m.isOk());
            fifo.push_back({m.value(), pa, size, writable});
        } else if (action == 1 && !fifo.empty()) { // unmap oldest
            ASSERT_TRUE(
                dev.unmap(fifo.front().iova, rng.chance(0.3)).isOk());
            fifo.pop_front();
        } else if (!fifo.empty()) { // access random live mapping
            const Live &l = fifo[rng.below(fifo.size())];
            const u32 offset = static_cast<u32>(rng.below(l.size + 16));
            const Access acc =
                rng.chance(0.5) ? Access::kRead : Access::kWrite;
            auto t = riommu.translate(bdf, l.iova.withOffset(offset),
                                      acc, 1);
            const bool should_ok =
                offset < l.size &&
                (acc == Access::kRead || l.writable);
            ASSERT_EQ(t.isOk(), should_ok) << "op " << i;
            if (should_ok) {
                EXPECT_EQ(t.value().pa, l.pa + offset);
            }
        }
        ASSERT_EQ(dev.nmapped(0), fifo.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RiommuFuzz,
                         ::testing::Values(FuzzParam{5, 6000},
                                           FuzzParam{6, 6000},
                                           FuzzParam{7, 12000}));

// ---- overflow under pressure ---------------------------------------------------

TEST(RiommuFuzzEdge, FullRingAlwaysOverflowsNeverCorrupts)
{
    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    riommu::Riommu riommu(pm, cost);
    riommu::RDevice dev(riommu, pm, Bdf{0, 4, 0}, std::vector<u32>{4},
                        true, cost, nullptr);
    const PhysAddr pa = pm.allocFrame();
    std::vector<riommu::RIova> live;
    for (int i = 0; i < 4; ++i)
        live.push_back(dev.map(0, pa, 8, DmaDir::kBidir).value());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(dev.map(0, pa, 8, DmaDir::kBidir).status().code(),
                  ErrorCode::kOverflow);
    // Everything mapped before the overflow storm still translates.
    for (const auto &iova : live) {
        EXPECT_TRUE(
            riommu.translate(Bdf{0, 4, 0}, iova, Access::kRead, 1)
                .isOk());
    }
}

} // namespace
} // namespace rio
