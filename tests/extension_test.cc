/**
 * @file
 * Tests for the features beyond the paper's core design:
 *
 *  - free-list rRINGs (the §4 sketch of AHCI/out-of-order support):
 *    (un)maps in arbitrary order, correctness vs. the sequential
 *    mode's documented restriction;
 *  - AHCI running under rIOMMU protection end-to-end through a
 *    free-list ring;
 *  - multi-device isolation: each device only sees its own mappings,
 *    for both the baseline IOMMU and the rIOMMU.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "ahci/ahci.h"
#include "base/rng.h"
#include "dma/dma_context.h"
#include "riommu/rdevice.h"

namespace rio {
namespace {

using iommu::Access;
using iommu::Bdf;
using iommu::DmaDir;
using riommu::RDevice;
using riommu::RingMode;
using riommu::RingSpec;

// ---- free-list rRINGs -------------------------------------------------------

class FreeListRingTest : public ::testing::Test
{
  protected:
    FreeListRingTest()
        : riommu(pm, cost),
          dev(riommu, pm, bdf,
              std::vector<RingSpec>{RingSpec{8, RingMode::kFreeList}},
              true, cost, &acct)
    {
        buf = pm.allocContiguous(kPageSize);
    }

    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    cycles::CycleAccount acct;
    Bdf bdf{0, 4, 0};
    riommu::Riommu riommu;
    RDevice dev;
    PhysAddr buf = 0;
};

TEST_F(FreeListRingTest, OutOfOrderUnmapThenRemapWorks)
{
    std::vector<riommu::RIova> iovas;
    for (u32 i = 0; i < 8; ++i)
        iovas.push_back(dev.map(0, buf + i, 1, DmaDir::kBidir).value());
    // Release the middle entries out of order...
    ASSERT_TRUE(dev.unmap(iovas[5], true).isOk());
    ASSERT_TRUE(dev.unmap(iovas[2], true).isOk());
    EXPECT_EQ(dev.nmapped(0), 6u);
    // ...and remap: must reuse exactly the freed slots.
    auto a = dev.map(0, buf + 100, 1, DmaDir::kBidir);
    auto b = dev.map(0, buf + 200, 1, DmaDir::kBidir);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    std::vector<u32> got = {a.value().rentry(), b.value().rentry()};
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<u32>{2, 5}));
    // And they translate to the fresh buffers.
    auto t = riommu.translate(bdf, a.value(), Access::kRead, 1);
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().pa, buf + 100);
}

TEST_F(FreeListRingTest, SequentialModeRejectsWhatFreeListAccepts)
{
    // The documented restriction of the paper's base design: after an
    // out-of-order unmap, the sequential tail hits a still-valid rPTE.
    RDevice seq(riommu, pm, Bdf{0, 5, 0}, std::vector<u32>{4}, true,
                cost, &acct);
    std::vector<riommu::RIova> iovas;
    for (u32 i = 0; i < 4; ++i)
        iovas.push_back(seq.map(0, buf, 1, DmaDir::kBidir).value());
    ASSERT_TRUE(seq.unmap(iovas[2], true).isOk()); // out of order
    auto r = seq.map(0, buf, 1, DmaDir::kBidir);
    EXPECT_EQ(r.status().code(), ErrorCode::kOverflow)
        << "sequential rRING cannot reuse a hole in the middle";
}

TEST_F(FreeListRingTest, EveryUnmapInvalidatesTheRingEntry)
{
    // Slot reuse is immediate in free-list mode, so a mid-burst stale
    // rIOTLB copy would mistranslate; the driver therefore treats
    // every unmap as end-of-burst (no amortization — the cost that
    // makes AHCI support "unneeded" in Sec. 4).
    auto a = dev.map(0, buf, 16, DmaDir::kBidir).value();
    ASSERT_TRUE(riommu.translate(bdf, a, Access::kRead, 1).isOk());
    const u64 inv0 = riommu.riotlb().stats().invalidations;
    ASSERT_TRUE(dev.unmap(a, /*end_of_burst=*/false).isOk());
    EXPECT_EQ(riommu.riotlb().stats().invalidations, inv0 + 1)
        << "invalidated despite end_of_burst=false";
    // Remap the slot with a different buffer: must translate fresh.
    auto b = dev.map(0, buf + 512, 16, DmaDir::kBidir).value();
    EXPECT_EQ(b.rentry(), a.rentry());
    auto t = riommu.translate(bdf, b, Access::kRead, 1);
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().pa, buf + 512);
}

TEST_F(FreeListRingTest, RandomChurnAgainstModel)
{
    Rng rng(17);
    std::vector<std::pair<riommu::RIova, PhysAddr>> live;
    for (int i = 0; i < 4000; ++i) {
        if (live.size() < 8 && (live.empty() || rng.chance(0.5))) {
            const PhysAddr pa = buf + rng.below(3000);
            auto m = dev.map(0, pa, 16, DmaDir::kBidir);
            ASSERT_TRUE(m.isOk());
            live.emplace_back(m.value(), pa);
        } else {
            const size_t idx = rng.below(live.size());
            ASSERT_TRUE(dev.unmap(live[idx].first, rng.chance(0.2)).isOk());
            live.erase(live.begin() + static_cast<long>(idx));
        }
        for (auto &[iova, pa] : live) {
            auto t = riommu.translate(bdf, iova, Access::kRead, 1);
            ASSERT_TRUE(t.isOk());
            ASSERT_EQ(t.value().pa, pa);
        }
        ASSERT_EQ(dev.nmapped(0), live.size());
    }
}

TEST_F(FreeListRingTest, FullRingOverflows)
{
    for (u32 i = 0; i < 8; ++i)
        ASSERT_TRUE(dev.map(0, buf, 1, DmaDir::kBidir).isOk());
    EXPECT_EQ(dev.map(0, buf, 1, DmaDir::kBidir).status().code(),
              ErrorCode::kOverflow);
}

// ---- AHCI under rIOMMU (the extension's purpose) --------------------------

TEST(AhciUnderRiommu, OutOfOrderDiskRunsFullyProtected)
{
    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core(sim, ctx.cost());
    // rid 0 is a free-list ring sized for the 32 NCQ slots.
    auto handle = ctx.makeHandleWithSpecs(
        dma::ProtectionMode::kRiommu, Bdf{0, 5, 0}, &core.acct(),
        {RingSpec{ahci::AhciDevice::kSlots, RingMode::kFreeList}});
    ahci::AhciDevice disk(sim, core, ctx.memory(), *handle);

    const PhysAddr buf = ctx.memory().allocContiguous(64 * kPageSize);
    u64 done = 0;
    Rng rng(4);
    u64 issued = 0;
    std::function<void()> fill = [&] {
        while (issued < 200 && disk.freeSlots() > 0) {
            ASSERT_TRUE(
                disk.issue(false, rng.below(100000) * 8, 4, buf).isOk());
            ++issued;
        }
    };
    disk.setCompletionCallback([&](u32, Status s) {
        ASSERT_TRUE(s.isOk()) << s.toString();
        ++done;
        fill();
    });
    core.post(fill);
    sim.run();
    EXPECT_EQ(done, 200u);
    EXPECT_EQ(handle->liveMappings(), 0u);
    EXPECT_TRUE(ctx.riommu().faults().empty());
}

// ---- multi-device isolation -------------------------------------------------

TEST(Isolation, BaselineDevicesCannotUseEachOthersMappings)
{
    dma::DmaContext ctx;
    cycles::CycleAccount a1, a2;
    auto dev_a = ctx.makeHandle(dma::ProtectionMode::kStrict,
                                Bdf{0, 1, 0}, &a1);
    auto dev_b = ctx.makeHandle(dma::ProtectionMode::kStrict,
                                Bdf{0, 2, 0}, &a2);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = dev_a->map(0, buf, 512, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    u64 v = 0;
    EXPECT_TRUE(dev_a->deviceRead(m.value().device_addr, &v, 8).isOk());
    EXPECT_FALSE(dev_b->deviceRead(m.value().device_addr, &v, 8).isOk())
        << "device B must not translate through device A's tables";
}

TEST(Isolation, RiommuDevicesCannotUseEachOthersRings)
{
    dma::DmaContext ctx;
    cycles::CycleAccount a1, a2;
    auto dev_a = ctx.makeHandle(dma::ProtectionMode::kRiommu,
                                Bdf{0, 1, 0}, &a1, {16});
    auto dev_b = ctx.makeHandle(dma::ProtectionMode::kRiommu,
                                Bdf{0, 2, 0}, &a2, {16});
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = dev_a->map(0, buf, 64, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    u64 v = 0;
    EXPECT_TRUE(dev_a->deviceRead(m.value().device_addr, &v, 8).isOk());
    EXPECT_FALSE(dev_b->deviceRead(m.value().device_addr, &v, 8).isOk())
        << "the rIOVA decodes against B's (empty) rRINGs and faults";
}

TEST(Isolation, BaselineIovasArePerDeviceNamespaces)
{
    // Two devices get overlapping IOVA ranges (each allocator starts
    // at the same limit) yet translate to their own buffers.
    dma::DmaContext ctx;
    cycles::CycleAccount a1, a2;
    auto dev_a = ctx.makeHandle(dma::ProtectionMode::kStrict,
                                Bdf{0, 1, 0}, &a1);
    auto dev_b = ctx.makeHandle(dma::ProtectionMode::kStrict,
                                Bdf{0, 2, 0}, &a2);
    const PhysAddr buf_a = ctx.memory().allocFrame();
    const PhysAddr buf_b = ctx.memory().allocFrame();
    auto ma = dev_a->map(0, buf_a, 512, DmaDir::kBidir);
    auto mb = dev_b->map(0, buf_b, 512, DmaDir::kBidir);
    ASSERT_TRUE(ma.isOk());
    ASSERT_TRUE(mb.isOk());
    EXPECT_EQ(ma.value().device_addr, mb.value().device_addr)
        << "same IOVA integer on both devices";
    u64 wa = 0xaaaa, wb = 0xbbbb;
    ASSERT_TRUE(dev_a->deviceWrite(ma.value().device_addr, &wa, 8).isOk());
    ASSERT_TRUE(dev_b->deviceWrite(mb.value().device_addr, &wb, 8).isOk());
    EXPECT_EQ(ctx.memory().read64(buf_a), 0xaaaau);
    EXPECT_EQ(ctx.memory().read64(buf_b), 0xbbbbu);
}

} // namespace
} // namespace rio
