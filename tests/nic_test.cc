/**
 * @file
 * Tests for the NIC device + driver model: bring-up working set,
 * Tx/Rx round trips under every protection mode, interrupt
 * coalescing and burst-invalidation behaviour, line-rate pacing,
 * inline sends, Rx starvation, and teardown.
 */
#include <gtest/gtest.h>

#include "sys/machine.h"

namespace rio::nic {
namespace {

using dma::ProtectionMode;

NicProfile
testProfile()
{
    NicProfile p; // small rings for fast tests
    p.name = "test";
    p.line_rate_gbps = 10.0;
    p.tx_buffers_per_packet = 2;
    p.rx_rings = 2;
    p.rx_ring_entries = 32;
    p.tx_ring_entries = 64;
    p.tx_completion_batch = 16;
    p.tx_irq_delay_ns = 5000;
    p.rx_irq_delay_ns = 1000;
    return p;
}

class NicModeTest : public ::testing::TestWithParam<ProtectionMode>
{
};

TEST_P(NicModeTest, BringUpInstallsRxWorkingSet)
{
    des::Simulator sim;
    const NicProfile profile = testProfile();
    sys::Machine m(sim, GetParam(), profile);
    m.bringUp();
    if (GetParam() != ProtectionMode::kNone &&
        GetParam() != ProtectionMode::kHwPassthrough) {
        // 64 rx buffers + 3 static ring mappings.
        EXPECT_EQ(m.nic().liveMappings(),
                  u64{profile.rx_rings} * profile.rx_ring_entries + 3);
    }
}

TEST_P(NicModeTest, TxPacketsReachTheWire)
{
    des::Simulator sim;
    sys::Machine m(sim, GetParam(), testProfile());
    m.bringUp();
    u64 on_wire = 0;
    m.nic().setWireTxCallback(
        [&](const net::Packet &pkt) {
            EXPECT_EQ(pkt.payload_bytes, net::kMss);
            ++on_wire;
        });
    m.core().post([&] {
        for (int i = 0; i < 20; ++i) {
            net::Packet pkt;
            pkt.payload_bytes = net::kMss;
            ASSERT_TRUE(m.nic().sendPacket(pkt).isOk());
        }
    });
    sim.run();
    EXPECT_EQ(on_wire, 20u);
    EXPECT_EQ(m.nic().stats().tx_packets, 20u);
    EXPECT_EQ(m.nic().stats().dma_faults, 0u);
    // All Tx mappings recycled after the completion interrupt.
    if (GetParam() == ProtectionMode::kStrict) {
        EXPECT_EQ(m.handle().liveMappings(),
                  u64{testProfile().rx_rings} *
                          testProfile().rx_ring_entries + 3);
    }
}

TEST_P(NicModeTest, RxPacketsAreDeliveredAndBuffersRecycled)
{
    des::Simulator sim;
    sys::Machine m(sim, GetParam(), testProfile());
    m.bringUp();
    u64 delivered = 0;
    m.nic().setRxCallback([&](const net::Packet &pkt) {
        EXPECT_EQ(pkt.payload_bytes, 700u);
        ++delivered;
    });
    for (int i = 0; i < 100; ++i) {
        sim.scheduleAt(static_cast<Nanos>(i) * 2000, [&] {
            net::Packet pkt;
            pkt.payload_bytes = 700;
            pkt.flow = 3;
            m.nic().packetFromWire(pkt);
        });
    }
    sim.run();
    EXPECT_EQ(delivered, 100u);
    EXPECT_EQ(m.nic().stats().rx_dropped, 0u);
    EXPECT_EQ(m.nic().stats().dma_faults, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, NicModeTest,
    ::testing::Values(ProtectionMode::kStrict, ProtectionMode::kStrictPlus,
                      ProtectionMode::kDefer, ProtectionMode::kDeferPlus,
                      ProtectionMode::kRiommuNc, ProtectionMode::kRiommu,
                      ProtectionMode::kNone),
    [](const ::testing::TestParamInfo<ProtectionMode> &info) {
        std::string n = dma::modeName(info.param);
        for (char &c : n) {
            if (c == '+')
                c = 'P';
            if (c == '-')
                c = 'M';
        }
        return n;
    });

TEST(NicTest, InlineSendsNeedNoMapping)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kRiommu, testProfile());
    m.bringUp();
    const u64 live_before = m.handle().liveMappings();
    m.core().post([&] {
        net::Packet tiny;
        tiny.payload_bytes = 1; // <= inline threshold
        ASSERT_TRUE(m.nic().sendPacket(tiny).isOk());
        EXPECT_EQ(m.handle().liveMappings(), live_before)
            << "inline send must not map anything";
    });
    sim.run();
    EXPECT_EQ(m.nic().stats().tx_packets, 1u);
}

TEST(NicTest, OneRiotlbInvalidationPerCompletionBurst)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kRiommu, testProfile());
    m.bringUp();
    m.core().post([&] {
        for (int i = 0; i < 8; ++i) {
            net::Packet pkt;
            pkt.payload_bytes = net::kMss;
            ASSERT_TRUE(m.nic().sendPacket(pkt).isOk());
        }
    });
    const u64 inv_before = m.ctx().riommu().riotlb().stats().invalidations;
    sim.run();
    const u64 inv = m.ctx().riommu().riotlb().stats().invalidations -
                    inv_before;
    const u64 bursts = m.nic().stats().unmap_bursts;
    EXPECT_EQ(inv, bursts)
        << "exactly one rIOTLB invalidation per unmap burst";
    EXPECT_LT(bursts, 8u) << "completions must coalesce";
}

TEST(NicTest, LineRatePacesTransmission)
{
    des::Simulator sim;
    NicProfile p = testProfile();
    p.line_rate_gbps = 1.0; // slow wire
    sys::Machine m(sim, ProtectionMode::kNone, p);
    m.bringUp();
    m.core().post([&] {
        for (int i = 0; i < 10; ++i) {
            net::Packet pkt;
            pkt.payload_bytes = net::kMss;
            ASSERT_TRUE(m.nic().sendPacket(pkt).isOk());
        }
    });
    sim.run();
    // 10 packets of (1448+86) bytes at 1 Gbps ~ 122.7 us.
    const double expect_ns = 10 * net::wireTimeNs(net::kMss, 1.0);
    EXPECT_GT(static_cast<double>(sim.now()), expect_ns * 0.9);
}

TEST(NicTest, RxStarvationDropsPackets)
{
    des::Simulator sim;
    NicProfile p = testProfile();
    p.rx_rings = 1;
    p.rx_ring_entries = 4;
    p.rx_irq_delay_ns = 1000000; // driver asleep: no refills
    sys::Machine m(sim, ProtectionMode::kNone, p);
    m.bringUp();
    for (int i = 0; i < 10; ++i) {
        net::Packet pkt;
        pkt.payload_bytes = 100;
        m.nic().packetFromWire(pkt);
    }
    EXPECT_EQ(m.nic().stats().rx_packets, 4u);
    EXPECT_EQ(m.nic().stats().rx_dropped, 6u);
    sim.run();
}

TEST(NicTest, TxRingBackpressure)
{
    des::Simulator sim;
    NicProfile p = testProfile();
    sys::Machine m(sim, ProtectionMode::kNone, p);
    m.bringUp();
    m.core().post([&] {
        // 64 descriptors / 2 per packet = 32 packets fit.
        u32 accepted = 0;
        for (int i = 0; i < 100; ++i) {
            net::Packet pkt;
            pkt.payload_bytes = net::kMss;
            if (m.nic().txSpacePackets(pkt.payload_bytes) == 0)
                break;
            ASSERT_TRUE(m.nic().sendPacket(pkt).isOk());
            ++accepted;
        }
        EXPECT_EQ(accepted, 32u);
    });
    sim.run();
}

TEST(NicTest, ShutDownReleasesAllMappings)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    m.bringUp();
    EXPECT_GT(m.handle().liveMappings(), 0u);
    m.nic().shutDown();
    EXPECT_EQ(m.handle().liveMappings(), 0u);
}

TEST(NicTest, FlowsHashToStableRings)
{
    des::Simulator sim;
    NicProfile p = testProfile();
    p.rx_rings = 2;
    p.rx_ring_entries = 8;
    p.rx_irq_delay_ns = 1000000; // no refills: capacity == 8 per ring
    sys::Machine m(sim, ProtectionMode::kNone, p);
    m.bringUp();
    // 8 packets of one flow fill exactly one ring...
    for (int i = 0; i < 8; ++i) {
        net::Packet pkt;
        pkt.payload_bytes = 64;
        pkt.flow = 0;
        m.nic().packetFromWire(pkt);
    }
    EXPECT_EQ(m.nic().stats().rx_dropped, 0u);
    // ...and the other flow still has its own ring.
    net::Packet other;
    other.payload_bytes = 64;
    other.flow = 1;
    m.nic().packetFromWire(other);
    EXPECT_EQ(m.nic().stats().rx_dropped, 0u);
    sim.run();
}

} // namespace
} // namespace rio::nic
