/**
 * @file
 * Tests for the §5.4 prefetchers and the trace-replay harness,
 * including the paper's three findings as properties: stock
 * prefetchers get no prefetch hits on (un)map-churned traces,
 * modified ones need history, and the ring-sequential mechanism is
 * always right.
 */
#include <gtest/gtest.h>

#include "prefetch/replay.h"

namespace rio::prefetch {
namespace {

using trace::DmaTrace;
using trace::TraceEvent;

/** Synthesize the canonical ring workload trace:
 * map k+burst, access k, unmap k, ... in ring order. */
DmaTrace
ringTrace(u64 ring_entries, u64 laps, u64 base_pfn = 1000)
{
    DmaTrace t;
    // Prefill the ring.
    for (u64 i = 0; i < ring_entries; ++i)
        t.add(TraceEvent::Kind::kMap, base_pfn + i);
    u64 next_pfn = base_pfn + ring_entries;
    for (u64 lap = 0; lap < laps; ++lap) {
        for (u64 i = 0; i < ring_entries; ++i) {
            const u64 pfn =
                base_pfn + (lap * ring_entries + i) % (2 * ring_entries);
            t.add(TraceEvent::Kind::kAccess, pfn);
            t.add(TraceEvent::Kind::kUnmap, pfn);
            t.add(TraceEvent::Kind::kMap,
                  base_pfn +
                      (lap * ring_entries + i + ring_entries) %
                          (2 * ring_entries));
            (void)next_pfn;
        }
    }
    return t;
}

TEST(MarkovPrefetcherTest, LearnsSuccessors)
{
    MarkovPrefetcher p(16);
    std::vector<u64> preds;
    p.access(1, &preds);
    p.access(2, &preds);
    p.access(3, &preds);
    preds.clear();
    p.access(1, &preds); // successor of 1 was 2
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0], 2u);
}

TEST(MarkovPrefetcherTest, CapacityEvictsOldEntries)
{
    MarkovPrefetcher p(4);
    std::vector<u64> preds;
    for (u64 i = 0; i < 100; ++i)
        p.access(i, &preds);
    EXPECT_LE(p.historySize(), 4u);
}

TEST(MarkovPrefetcherTest, InvalidateForgets)
{
    MarkovPrefetcher p(16);
    std::vector<u64> preds;
    p.access(1, &preds);
    p.access(2, &preds);
    p.invalidate(1);
    preds.clear();
    p.access(1, &preds);
    EXPECT_TRUE(preds.empty()) << "forgotten entries predict nothing";
}

TEST(RecencyPrefetcherTest, PredictsStackNeighbours)
{
    RecencyPrefetcher p(16);
    std::vector<u64> preds;
    p.access(10, &preds);
    p.access(20, &preds);
    p.access(30, &preds); // stack: 30 20 10
    preds.clear();
    p.access(20, &preds); // neighbours: 30 (above), 10 (below)
    ASSERT_EQ(preds.size(), 2u);
    EXPECT_EQ(preds[0], 30u);
    EXPECT_EQ(preds[1], 10u);
}

TEST(DistancePrefetcherTest, LearnsStridePatterns)
{
    DistancePrefetcher p(16);
    std::vector<u64> preds;
    // Constant stride +4: distances 4,4,... -> predicts pfn+4.
    for (u64 pfn = 100; pfn < 140; pfn += 4)
        p.access(pfn, &preds);
    preds.clear();
    p.access(140, &preds);
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0], 144u);
}

TEST(SequentialRingPrefetcherTest, PredictsNextMappedEntry)
{
    SequentialRingPrefetcher p;
    std::vector<u64> preds;
    p.onMap(5);
    p.onMap(9);
    p.onMap(2);
    p.access(5, &preds);
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0], 9u) << "next in map order, not address order";
    preds.clear();
    p.invalidate(9);
    p.access(5, &preds);
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0], 2u);
}

// ---- replay properties -----------------------------------------------------

TEST(ReplayTest, StockPrefetchersGetNoPrefetchHitsOnChurn)
{
    // Paper finding 1: with immediate invalidation, the stock
    // prefetchers are ineffective.
    const DmaTrace t = ringTrace(64, 20);
    ReplayConfig stock;
    stock.tlb_entries = 16;
    stock.store_invalidated = false;

    MarkovPrefetcher markov(1024);
    RecencyPrefetcher recency(1024);
    for (TlbPrefetcher *p :
         std::initializer_list<TlbPrefetcher *>{&markov, &recency}) {
        const auto r = replayTrace(t, *p, stock);
        EXPECT_EQ(r.prefetch_hits, 0u) << p->name();
    }
}

TEST(ReplayTest, ModifiedPrefetchersNeedHistoryBeyondRing)
{
    // Paper finding 2: modified variants work once history > ring.
    const u64 ring = 64;
    const DmaTrace t = ringTrace(ring, 30);
    ReplayConfig modified;
    modified.tlb_entries = 8;
    modified.store_invalidated = true;

    MarkovPrefetcher small(ring / 4);
    MarkovPrefetcher big(ring * 4);
    const auto r_small = replayTrace(t, small, modified);
    const auto r_big = replayTrace(t, big, modified);
    EXPECT_GT(r_big.prefetch_hits, r_small.prefetch_hits * 2)
        << "history larger than the ring must predict much better";
}

TEST(ReplayTest, RingSequentialIsNearPerfectWithTwoEntries)
{
    // Paper finding 3: the rIOTLB mechanism needs 2 entries and is
    // always right.
    const DmaTrace t = ringTrace(64, 30);
    SequentialRingPrefetcher p;
    ReplayConfig cfg;
    cfg.tlb_entries = 2;
    cfg.store_invalidated = true;
    const auto r = replayTrace(t, p, cfg);
    EXPECT_GT(r.hitRate(), 0.95);
    EXPECT_EQ(r.rejected_predictions, 0u)
        << "ring-order predictions are always live";
}

TEST(ReplayTest, ValidationRejectsUnmappedPredictions)
{
    // A prediction pointing at an unmapped pfn must be rejected
    // rather than installed (it would fault in hardware).
    DmaTrace t;
    t.add(TraceEvent::Kind::kMap, 1);
    t.add(TraceEvent::Kind::kMap, 2);
    t.add(TraceEvent::Kind::kAccess, 1);
    t.add(TraceEvent::Kind::kAccess, 2);
    t.add(TraceEvent::Kind::kUnmap, 2);
    t.add(TraceEvent::Kind::kAccess, 1); // markov predicts 2: rejected

    MarkovPrefetcher p(16);
    ReplayConfig cfg;
    cfg.store_invalidated = true;
    cfg.validate_against_live = true;
    const auto r = replayTrace(t, p, cfg);
    EXPECT_GE(r.rejected_predictions, 1u);
}

TEST(ReplayTest, TlbInvalidationOnUnmap)
{
    // After an unmap, a re-access must miss even if it was cached.
    DmaTrace t;
    t.add(TraceEvent::Kind::kMap, 7);
    t.add(TraceEvent::Kind::kAccess, 7);
    t.add(TraceEvent::Kind::kAccess, 7); // hit
    t.add(TraceEvent::Kind::kUnmap, 7);
    t.add(TraceEvent::Kind::kMap, 7);
    t.add(TraceEvent::Kind::kAccess, 7); // must miss again
    RecencyPrefetcher p(8);
    ReplayConfig cfg;
    const auto r = replayTrace(t, p, cfg);
    EXPECT_EQ(r.accesses, 3u);
    EXPECT_EQ(r.hits, 1u);
    EXPECT_EQ(r.misses, 2u);
}

/** Parameterized sweep: hit rate is monotone-ish in TLB size. */
class ReplayTlbSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ReplayTlbSweep, BiggerTlbNeverHurts)
{
    const DmaTrace t = ringTrace(32, 20);
    RecencyPrefetcher p1(256), p2(256);
    ReplayConfig small_cfg, big_cfg;
    small_cfg.tlb_entries = GetParam();
    big_cfg.tlb_entries = GetParam() * 4;
    small_cfg.store_invalidated = big_cfg.store_invalidated = true;
    const auto small = replayTrace(t, p1, small_cfg);
    const auto big = replayTrace(t, p2, big_cfg);
    EXPECT_GE(big.hits + 1, small.hits);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReplayTlbSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

} // namespace
} // namespace rio::prefetch
