/**
 * @file
 * Fault-reporting & recovery unit tests: the VT-d-style fault log
 * ring (overflow bit + record dropping, like hardware), the rIOMMU
 * per-ring fault latch, the per-policy recovery cycle charges, and
 * the determinism of the fault injector.
 */
#include <gtest/gtest.h>

#include <string>

#include "dma/dma_context.h"
#include "dma/fault.h"
#include "dma/simple_handles.h"
#include "iommu/fault_log.h"
#include "riommu/rdevice.h"

namespace rio {
namespace {

using iommu::Access;
using iommu::Bdf;
using iommu::DmaDir;
using iommu::FaultReason;
using iommu::FaultRecord;

// ---- fault log ring ---------------------------------------------------------

TEST(FaultLogTest, RecordsRoundTripThroughSimulatedMemory)
{
    mem::PhysicalMemory pm;
    iommu::FaultLog log(pm, 8);
    const FaultRecord rec{Bdf{0, 5, 0}, 0x1234000, Access::kWrite,
                          FaultReason::kPermission};
    ASSERT_TRUE(log.record(rec));
    EXPECT_EQ(log.pending(), 1u);
    // The record is resident in simulated physical memory: word0 at
    // the ring base is the faulting IOVA.
    EXPECT_EQ(pm.read64(log.base()), 0x1234000u);

    auto drained = log.drain();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].bdf.pack(), (Bdf{0, 5, 0}).pack());
    EXPECT_EQ(drained[0].iova, 0x1234000u);
    EXPECT_EQ(drained[0].access, Access::kWrite);
    EXPECT_EQ(drained[0].reason, FaultReason::kPermission);
    EXPECT_EQ(log.pending(), 0u);
}

TEST(FaultLogTest, OverflowSetsBitAndDropsRecordsLikeHardware)
{
    mem::PhysicalMemory pm;
    iommu::FaultLog log(pm, 4);
    for (u64 i = 0; i < 4; ++i)
        ASSERT_TRUE(log.record({Bdf{0, 3, 0}, i << kPageShift,
                                Access::kRead, FaultReason::kNotPresent}));
    EXPECT_FALSE(log.overflow());

    // Every slot occupied: the next record is dropped, the overflow
    // (PFO) bit latches, and the ring contents stay intact.
    EXPECT_FALSE(log.record({Bdf{0, 3, 0}, 0x9999000, Access::kRead,
                             FaultReason::kNotPresent}));
    EXPECT_TRUE(log.overflow());
    EXPECT_EQ(log.recorded(), 4u);
    EXPECT_EQ(log.dropped(), 1u);

    auto drained = log.drain();
    ASSERT_EQ(drained.size(), 4u);
    for (u64 i = 0; i < 4; ++i)
        EXPECT_EQ(drained[i].iova, i << kPageShift) << "arrival order";
    // Draining frees slots but does NOT clear overflow — that takes
    // an explicit status write, as on hardware.
    EXPECT_TRUE(log.overflow());
    EXPECT_TRUE(log.record({Bdf{0, 3, 0}, 0x5000, Access::kRead,
                            FaultReason::kNotPresent}));
    log.clearOverflow();
    EXPECT_FALSE(log.overflow());
}

TEST(FaultLogTest, WrapsAroundAfterDrain)
{
    mem::PhysicalMemory pm;
    iommu::FaultLog log(pm, 2);
    for (int round = 0; round < 5; ++round) {
        ASSERT_TRUE(log.record({Bdf{0, 3, 0},
                                static_cast<u64>(round) << kPageShift,
                                Access::kRead,
                                FaultReason::kNotPresent}));
        auto d = log.drain();
        ASSERT_EQ(d.size(), 1u);
        EXPECT_EQ(d[0].iova, static_cast<u64>(round) << kPageShift);
    }
    EXPECT_FALSE(log.overflow());
    EXPECT_EQ(log.recorded(), 5u);
}

// ---- rIOMMU per-ring latch --------------------------------------------------

TEST(RingFaultLatchTest, LatchesPerRingIndependently)
{
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    const Bdf bdf{0, 4, 0};
    riommu::RDevice dev(ctx.riommu(), ctx.memory(), bdf,
                        std::vector<u32>{8, 8}, true, ctx.cost(), &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto iova0 = dev.map(0, buf, 64, DmaDir::kToDevice).value();
    auto iova1 = dev.map(1, buf, 64, DmaDir::kToDevice).value();

    // Ring 0 faults (write to a read-only mapping); ring 1 is clean.
    ASSERT_FALSE(
        ctx.riommu().translate(bdf, iova0, Access::kWrite, 1).isOk());
    const FaultRecord *latch0 = ctx.riommu().ringFault(bdf, 0);
    ASSERT_NE(latch0, nullptr);
    EXPECT_EQ(latch0->reason, FaultReason::kPermission);
    EXPECT_EQ(latch0->iova, iova0.raw);
    EXPECT_EQ(ctx.riommu().ringFault(bdf, 1), nullptr);

    // First fault wins: a second, different fault on ring 0 does not
    // overwrite the latched record.
    ASSERT_FALSE(ctx.riommu()
                     .translate(bdf, iova0.withOffset(100),
                                Access::kRead, 1)
                     .isOk());
    EXPECT_EQ(ctx.riommu().ringFault(bdf, 0)->iova, iova0.raw);

    // Ring 1 latches its own fault; clearing ring 0 leaves it alone.
    ASSERT_FALSE(
        ctx.riommu().translate(bdf, iova1, Access::kWrite, 1).isOk());
    ASSERT_NE(ctx.riommu().ringFault(bdf, 1), nullptr);
    ctx.riommu().clearRingFault(bdf, 0);
    EXPECT_EQ(ctx.riommu().ringFault(bdf, 0), nullptr);
    EXPECT_NE(ctx.riommu().ringFault(bdf, 1), nullptr);
    EXPECT_EQ(ctx.riommu().latchedRingFaults(), 1u);
}

// ---- recovery policy cycle charges ------------------------------------------

class PolicyChargeTest : public ::testing::Test
{
  protected:
    cycles::CostModel cost;
    cycles::CycleAccount acct;
    dma::FaultEngine eng;
    Status fail{ErrorCode::kIoPageFault, "test fault"};

    void
    SetUp() override
    {
        eng.bind(&cost, &acct);
    }

    Cycles charged() const { return acct.get(cycles::Cat::kFaultHandling); }
};

TEST_F(PolicyChargeTest, AbortChargesOneFaultReport)
{
    eng.setPolicy(dma::FaultPolicy::kAbort);
    int repairs = 0;
    Status out = eng.recover(
        fail, [&] { ++repairs; }, [] { return Status::ok(); });
    EXPECT_FALSE(out.isOk());
    EXPECT_EQ(repairs, 1) << "abort still repairs the translation";
    EXPECT_EQ(charged(), cost.fault_report);
    EXPECT_EQ(eng.stats().dropped, 1u);
    EXPECT_EQ(eng.stats().recovered, 0u);
}

TEST_F(PolicyChargeTest, RetryRemapChargesReportPlusRemapPerAttempt)
{
    eng.setPolicy(dma::FaultPolicy::kRetryRemap);
    Status out = eng.recover(
        fail, [] {}, [] { return Status::ok(); });
    EXPECT_TRUE(out.isOk());
    EXPECT_EQ(charged(), cost.fault_report + cost.fault_remap);
    EXPECT_EQ(eng.stats().recovered, 1u);
    EXPECT_EQ(eng.stats().retries, 1u);
}

TEST_F(PolicyChargeTest, RetryExhaustionChargesEveryAttempt)
{
    eng.setPolicy(dma::FaultPolicy::kRetryRemap);
    dma::FaultInjectConfig cfg; // defaults: max_retries = 3
    eng.setInjection(cfg);
    Status out = eng.recover(
        fail, [] {}, [this] { return fail; });
    EXPECT_FALSE(out.isOk());
    EXPECT_EQ(charged(), cost.fault_report + 3 * cost.fault_remap);
    EXPECT_EQ(eng.stats().retries, 3u);
    EXPECT_EQ(eng.stats().dropped, 1u);
}

TEST_F(PolicyChargeTest, DropBackoffChargesReportPlusBackoff)
{
    eng.setPolicy(dma::FaultPolicy::kDropBackoff);
    Status out = eng.recover(
        fail, [] {}, [] { return Status::ok(); });
    EXPECT_FALSE(out.isOk()) << "drop-backoff never replays";
    EXPECT_EQ(charged(), cost.fault_report + cost.fault_backoff);
    EXPECT_EQ(eng.stats().dropped, 1u);
}

// ---- injector determinism ---------------------------------------------------

TEST(FaultInjectTest, SameSeedSameFaultPattern)
{
    auto pattern = [](u64 seed) {
        mem::PhysicalMemory pm;
        cycles::CostModel cost;
        cycles::CycleAccount acct;
        dma::NoneDmaHandle handle(pm, Bdf{0, 3, 0}, cost, &acct);
        handle.setFaultPolicy(dma::FaultPolicy::kAbort);
        dma::FaultInjectConfig cfg;
        cfg.rate = 0.5;
        cfg.seed = seed;
        handle.setFaultInjection(cfg);
        const PhysAddr buf = pm.allocFrame();
        std::string p;
        u64 v = 0;
        for (int i = 0; i < 200; ++i)
            p += handle.deviceRead(buf, &v, 8).isOk() ? '.' : 'F';
        return p;
    };
    const std::string a = pattern(42), b = pattern(42), c = pattern(43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c) << "different seeds give different streams "
                       "(0.5^200 false-positive odds)";
    EXPECT_NE(a.find('F'), std::string::npos);
    EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FaultInjectTest, UnarmedEngineMakesNoChargesAndNoDraws)
{
    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    cycles::CycleAccount acct;
    dma::NoneDmaHandle handle(pm, Bdf{0, 3, 0}, cost, &acct);
    const PhysAddr buf = pm.allocFrame();
    u64 v = 0;
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(handle.deviceRead(buf, &v, 8).isOk());
    EXPECT_EQ(acct.get(cycles::Cat::kFaultHandling), 0u);
    EXPECT_EQ(handle.faultStats().injected, 0u);
    EXPECT_EQ(handle.faultStats().faults_seen, 0u);
}

} // namespace
} // namespace rio
