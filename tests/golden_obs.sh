#!/usr/bin/env bash
# Observability zero-cost regression: with the obs layer compiled in
# (metrics registry + flight recorder live on every hot path),
# bench_fig7 must still reproduce the checked-in golden JSON byte for
# byte. Instrumentation charges no simulated cycles and draws no RNG,
# so any diff here means an instrumentation point leaked into the
# simulation. If the bench itself changed intentionally, regenerate:
#
#   RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 bench_fig7_cycles_per_packet \
#       --json tests/golden/fig7_quick.json
#
# With the optional 3rd/4th args, the same property is pinned for the
# distributed tracing stack: bench_cluster_rdma with FULL tracing on
# (--timeline + --slo, every op allocating a trace id, every hot path
# emitting span events, every CQE recording an exact SLO sample) must
# still match the PR 7 cluster golden byte for byte. Trace-id
# allocation and span emission ride the deterministic replay without
# touching it.
#
# Usage: golden_obs.sh <bench_fig7> <golden.json> \
#            [<bench_cluster_rdma> <cluster_golden.json>]
set -euo pipefail

bench="$1"
golden="$2"
out="$(mktemp)"
trace="$(mktemp)"
trap 'rm -f "$out" "$trace"' EXIT

RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 "$bench" --json "$out" > /dev/null

if ! diff -u "$golden" "$out"; then
    echo "golden_obs: instrumented bench diverged from $golden" >&2
    exit 1
fi
echo "golden_obs: output matches $golden"

if [ "$#" -ge 4 ]; then
    cluster_bench="$3"
    cluster_golden="$4"
    RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 \
        "$cluster_bench" --connections 64 --quick --threads 1 \
        --json "$out" --timeline "$trace" --slo > /dev/null
    if ! diff -u "$cluster_golden" "$out"; then
        echo "golden_obs: cluster bench with full tracing diverged" \
             "from $cluster_golden" >&2
        exit 1
    fi
    # The trace must actually contain stitched op spans — a silently
    # empty export would make the zero-cost check vacuous.
    if ! grep -q '"cat": "op"' "$trace"; then
        echo "golden_obs: exported trace has no op spans" >&2
        exit 1
    fi
    echo "golden_obs: cluster run with tracing matches $cluster_golden"
fi
