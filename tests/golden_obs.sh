#!/usr/bin/env bash
# Observability zero-cost regression: with the obs layer compiled in
# (metrics registry + flight recorder live on every hot path),
# bench_fig7 must still reproduce the checked-in golden JSON byte for
# byte. Instrumentation charges no simulated cycles and draws no RNG,
# so any diff here means an instrumentation point leaked into the
# simulation. If the bench itself changed intentionally, regenerate:
#
#   RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 bench_fig7_cycles_per_packet \
#       --json tests/golden/fig7_quick.json
#
# Usage: golden_obs.sh <bench_fig7-binary> <golden.json>
set -euo pipefail

bench="$1"
golden="$2"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 "$bench" --json "$out" > /dev/null

if ! diff -u "$golden" "$out"; then
    echo "golden_obs: instrumented bench diverged from $golden" >&2
    exit 1
fi
echo "golden_obs: output matches $golden"
