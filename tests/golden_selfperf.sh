#!/usr/bin/env bash
# Thread-count invariance regression for the parallel engine: the
# engine-backed sweeps must produce byte-identical JSON whether the
# lanes run sequentially or on a worker pool, and that output must
# still match the pre-refactor checked-in goldens. Any diff means a
# lane leaked state across threads — a shared RNG draw, a racy
# counter feeding a result, a reordered mailbox.
#
#   1. bench_fig7 --threads 1  ==  checked-in fig7 golden (byte for byte)
#   2. bench_fig7 --threads 4  ==  --threads 1   (modulo the threads field)
#   3. bench_virt --platform bare --threads 4  ==  fig7 golden
#      (modulo bench name + threads field)
#
# Usage: golden_selfperf.sh <bench_fig7> <bench_virt> <fig7_golden.json>
set -euo pipefail

fig7="$1"
virt="$2"
golden="$3"
t1="$(mktemp)"
t4="$(mktemp)"
vbare="$(mktemp)"
trap 'rm -f "$t1" "$t4" "$vbare"' EXIT

RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 "$fig7" --threads 1 --json "$t1" > /dev/null
RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 "$fig7" --threads 4 --json "$t4" > /dev/null
RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 "$virt" --platform bare --threads 4 \
    --json "$vbare" > /dev/null

# The threads meta field legitimately records the flag; the rows must
# not move. strip_meta also drops the bench name for cross-binary
# comparison (bench_virt names its output differently, golden_virt
# style).
strip_meta() {
    sed -e 's/"bench": "[^"]*"/"bench": ""/' \
        -e 's/"threads": [0-9]*/"threads": 0/' "$1"
}

if ! diff -u "$golden" "$t1"; then
    echo "golden_selfperf: --threads 1 diverged from $golden" >&2
    exit 1
fi
if ! diff -u <(strip_meta "$t1") <(strip_meta "$t4"); then
    echo "golden_selfperf: --threads 4 diverged from --threads 1" >&2
    exit 1
fi
if ! diff -u <(strip_meta "$golden") <(strip_meta "$vbare"); then
    echo "golden_selfperf: bench_virt bare --threads 4 diverged" >&2
    exit 1
fi
echo "golden_selfperf: threaded sweeps are byte-identical"
