#!/usr/bin/env bash
# Golden-output regression for the core-scaling bench: rerun
# bench_scaling_cores at 1 and 2 cores and require its --json output
# to match the checked-in golden byte for byte. The simulation is a
# deterministic discrete-event replay, so any diff is a real behavior
# change — if it is intentional, regenerate with
#
#   RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 bench_scaling_cores --cores 1,2 \
#       --json tests/golden/scaling_cores_1_2.json
#
# Usage: golden_scaling.sh <bench_scaling_cores-binary> <golden.json>
set -euo pipefail

bench="$1"
golden="$2"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

# The golden was produced under RIO_BENCH_QUICK; pin it so the test is
# fast and insensitive to the caller's environment.
RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 "$bench" --cores 1,2 --json "$out" > /dev/null

if ! diff -u "$golden" "$out"; then
    echo "golden_scaling: bench output diverged from $golden" >&2
    exit 1
fi
echo "golden_scaling: output matches $golden"
