/**
 * @file
 * Tests for DMA trace capture and (de)serialization.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "dma/dma_context.h"
#include "trace/trace.h"

namespace rio::trace {
namespace {

TEST(TraceTest, RecordingHandleCapturesEvents)
{
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    auto inner = ctx.makeHandle(dma::ProtectionMode::kStrict,
                                iommu::Bdf{0, 3, 0}, &acct);
    DmaTrace trace;
    RecordingDmaHandle handle(*inner, trace);

    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle.map(0, buf, 512, iommu::DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    u64 v = 0;
    ASSERT_TRUE(handle.deviceWrite(m.value().device_addr, &v, 8).isOk());
    ASSERT_TRUE(handle.deviceRead(m.value().device_addr, &v, 8).isOk());
    ASSERT_TRUE(handle.unmap(m.value(), true).isOk());

    ASSERT_EQ(trace.size(), 4u);
    const auto &ev = trace.events();
    EXPECT_EQ(ev[0].kind, TraceEvent::Kind::kMap);
    EXPECT_EQ(ev[1].kind, TraceEvent::Kind::kAccess);
    EXPECT_EQ(ev[2].kind, TraceEvent::Kind::kAccess);
    EXPECT_EQ(ev[3].kind, TraceEvent::Kind::kUnmap);
    EXPECT_EQ(ev[0].iova_pfn, ev[3].iova_pfn);
    EXPECT_EQ(ev[0].iova_pfn, m.value().device_addr >> kPageShift);
}

TEST(TraceTest, RecordingIsTransparent)
{
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    auto inner = ctx.makeHandle(dma::ProtectionMode::kRiommu,
                                iommu::Bdf{0, 3, 0}, &acct, {16});
    DmaTrace trace;
    RecordingDmaHandle handle(*inner, trace);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle.map(0, buf, 100, iommu::DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    EXPECT_EQ(handle.liveMappings(), 1u);
    // Failed accesses are recorded (access + fault marker) but still
    // propagate the error.
    u64 v = 0;
    const u64 before = trace.size();
    EXPECT_FALSE(
        handle.deviceRead(m.value().device_addr, &v, 200).isOk())
        << "read beyond the 100-byte mapping must fault";
    ASSERT_EQ(trace.size(), before + 2);
    EXPECT_EQ(trace.events()[before].kind, TraceEvent::Kind::kAccess);
    EXPECT_EQ(trace.events()[before + 1].kind,
              TraceEvent::Kind::kFault);
    EXPECT_EQ(trace.events()[before + 1].iova_pfn,
              m.value().device_addr >> kPageShift);
}

TEST(TraceTest, SaveAndLoadTextRoundTrip)
{
    DmaTrace trace;
    trace.add(TraceEvent::Kind::kMap, 100);
    trace.add(TraceEvent::Kind::kAccess, 100);
    trace.add(TraceEvent::Kind::kUnmap, 100);
    const std::string path = "/tmp/rio_trace_test.txt";
    ASSERT_TRUE(trace.saveText(path).isOk());

    DmaTrace loaded;
    ASSERT_TRUE(loaded.loadText(path).isOk());
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded.events()[0].kind, TraceEvent::Kind::kMap);
    EXPECT_EQ(loaded.events()[1].kind, TraceEvent::Kind::kAccess);
    EXPECT_EQ(loaded.events()[2].kind, TraceEvent::Kind::kUnmap);
    EXPECT_EQ(loaded.events()[2].iova_pfn, 100u);
    std::remove(path.c_str());
}

TEST(TraceTest, SaveAndLoadRoundTripsEveryKind)
{
    DmaTrace trace;
    trace.add(TraceEvent::Kind::kMap, 7);
    trace.add(TraceEvent::Kind::kAccess, 7);
    trace.add(TraceEvent::Kind::kFault, 7);
    trace.add(TraceEvent::Kind::kUnmap, 0xfffffffffffULL);
    const std::string path = "/tmp/rio_trace_kinds_test.txt";
    ASSERT_TRUE(trace.saveText(path).isOk());

    DmaTrace loaded;
    ASSERT_TRUE(loaded.loadText(path).isOk());
    ASSERT_EQ(loaded.size(), trace.size());
    for (size_t i = 0; i < trace.events().size(); ++i) {
        EXPECT_EQ(loaded.events()[i].kind, trace.events()[i].kind) << i;
        EXPECT_EQ(loaded.events()[i].iova_pfn, trace.events()[i].iova_pfn)
            << i;
    }
    std::remove(path.c_str());
}

TEST(TraceTest, LoadMissingFileFails)
{
    DmaTrace trace;
    EXPECT_EQ(trace.loadText("/tmp/definitely-not-here-42").code(),
              ErrorCode::kNotFound);
}

namespace {

/** Write @p text to a temp file and return loadText's status. */
Status
loadFrom(const std::string &text, DmaTrace &trace)
{
    const std::string path = "/tmp/rio_trace_malformed_test.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    Status s = trace.loadText(path);
    std::remove(path.c_str());
    return s;
}

} // namespace

TEST(TraceTest, LoadRejectsUnknownKind)
{
    DmaTrace trace;
    const Status s = loadFrom("M 1\nX 2\n", trace);
    EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
    // The error names the offending line so a corrupted capture can
    // be located, not just detected.
    EXPECT_NE(s.toString().find(":2:"), std::string::npos)
        << s.toString();
    EXPECT_NE(s.toString().find("'X'"), std::string::npos)
        << s.toString();
}

TEST(TraceTest, LoadRejectsMissingPfn)
{
    DmaTrace trace;
    const Status s = loadFrom("M\n", trace);
    EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(s.toString().find("malformed"), std::string::npos)
        << s.toString();
}

TEST(TraceTest, LoadRejectsTrailingJunk)
{
    DmaTrace trace;
    const Status s = loadFrom("A 5 extra\n", trace);
    EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(s.toString().find(":1:"), std::string::npos)
        << s.toString();
}

TEST(TraceTest, LoadSkipsBlankLines)
{
    DmaTrace trace;
    ASSERT_TRUE(loadFrom("M 1\n\nU 1\n", trace).isOk());
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.events()[1].kind, TraceEvent::Kind::kUnmap);
}

} // namespace
} // namespace rio::trace
