/**
 * @file
 * Tests for the cycle-accounting toolkit: categories, charging,
 * windows, and the cost-model unit conversions.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"

namespace rio::cycles {
namespace {

TEST(CycleAccount, StartsEmpty)
{
    CycleAccount a;
    EXPECT_EQ(a.total(), 0u);
    for (unsigned i = 0; i < kNumCats; ++i) {
        EXPECT_EQ(a.get(static_cast<Cat>(i)), 0u);
        EXPECT_EQ(a.ops(static_cast<Cat>(i)), 0u);
    }
}

TEST(CycleAccount, ChargeAccumulatesPerCategory)
{
    CycleAccount a;
    a.charge(Cat::kMapIovaAlloc, 100);
    a.charge(Cat::kMapIovaAlloc, 50);
    a.charge(Cat::kUnmapIotlbInv, 2150);
    EXPECT_EQ(a.get(Cat::kMapIovaAlloc), 150u);
    EXPECT_EQ(a.ops(Cat::kMapIovaAlloc), 2u);
    EXPECT_DOUBLE_EQ(a.avg(Cat::kMapIovaAlloc), 75.0);
    EXPECT_EQ(a.total(), 2300u);
}

TEST(CycleAccount, ChargeContDoesNotBumpOps)
{
    CycleAccount a;
    a.charge(Cat::kUnmapOther, 26);
    a.chargeCont(Cat::kUnmapOther, 2150); // amortized flush share
    EXPECT_EQ(a.ops(Cat::kUnmapOther), 1u);
    EXPECT_EQ(a.get(Cat::kUnmapOther), 2176u);
}

TEST(CycleAccount, MapUnmapTotalsSplitCorrectly)
{
    CycleAccount a;
    a.charge(Cat::kMapIovaAlloc, 1);
    a.charge(Cat::kMapPageTable, 2);
    a.charge(Cat::kMapOther, 4);
    a.charge(Cat::kUnmapIovaFind, 8);
    a.charge(Cat::kUnmapIovaFree, 16);
    a.charge(Cat::kUnmapPageTable, 32);
    a.charge(Cat::kUnmapIotlbInv, 64);
    a.charge(Cat::kUnmapOther, 128);
    a.charge(Cat::kProcessing, 256);
    EXPECT_EQ(a.mapTotal(), 7u);
    EXPECT_EQ(a.unmapTotal(), 248u);
    EXPECT_EQ(a.dmaTotal(), 255u);
    EXPECT_EQ(a.total(), 511u);
}

TEST(CycleAccount, SinceComputesWindows)
{
    CycleAccount a;
    a.charge(Cat::kProcessing, 100);
    const CycleAccount snapshot = a;
    a.charge(Cat::kProcessing, 40);
    a.charge(Cat::kMapOther, 5);
    const CycleAccount delta = a.since(snapshot);
    EXPECT_EQ(delta.get(Cat::kProcessing), 40u);
    EXPECT_EQ(delta.ops(Cat::kProcessing), 1u);
    EXPECT_EQ(delta.get(Cat::kMapOther), 5u);
    EXPECT_EQ(delta.total(), 45u);
}

TEST(CycleAccount, ResetClears)
{
    CycleAccount a;
    a.charge(Cat::kProcessing, 7);
    a.reset();
    EXPECT_EQ(a.total(), 0u);
    EXPECT_EQ(a.ops(Cat::kProcessing), 0u);
}

TEST(CycleAccount, EveryCategoryHasAName)
{
    for (unsigned i = 0; i < kNumCats; ++i)
        EXPECT_NE(catName(static_cast<Cat>(i)), nullptr);
}

TEST(CycleAccount, CategoryNamesAreUnique)
{
    // Duplicate (or fallback) names would silently merge categories
    // in every breakdown table and JSON mirror keyed on catName.
    std::set<std::string> seen;
    for (unsigned i = 0; i < kNumCats; ++i) {
        const char *name = catName(static_cast<Cat>(i));
        ASSERT_NE(name, nullptr) << i;
        EXPECT_NE(std::string(name), "?") << i;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate category name: " << name;
    }
}

TEST(CostModel, UnitConversions)
{
    CostModel m;
    m.core_ghz = 3.1;
    EXPECT_DOUBLE_EQ(m.toNanos(3100), 1000.0);
    EXPECT_DOUBLE_EQ(m.toSeconds(3100000000ULL), 1.0);
    EXPECT_DOUBLE_EQ(m.hz(), 3.1e9);
}

TEST(CostModel, PaperAnchorsHold)
{
    // The constants that come straight from the paper's text.
    const CostModel &m = defaultCostModel();
    EXPECT_EQ(m.iotlb_invalidate_entry, 2150u)
        << "the paper's own busy-wait constant";
    EXPECT_EQ(m.iotlb_invalidate_queued, 9u) << "Table 1 defer row";
    EXPECT_EQ(4 * m.hw_walk_level, 1532u)
        << "the 5.3 measured miss penalty == a 4-level walk";
    EXPECT_DOUBLE_EQ(m.core_ghz, 3.1) << "Xeon E3-1220 clock";
}

} // namespace
} // namespace rio::cycles
