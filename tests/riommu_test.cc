/**
 * @file
 * Tests for the rIOMMU: structure packing (Figure 9), the hardware
 * routines (Figure 10), the driver map/unmap (Figure 11), the
 * one-entry-per-ring rIOTLB with prefetch, fine-grained protection,
 * wraparound, overflow and burst invalidation.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cycles/cycle_account.h"
#include "riommu/rdevice.h"
#include "riommu/riommu.h"

namespace rio::riommu {
namespace {

using cycles::Cat;
using cycles::CycleAccount;

TEST(RIovaTest, PackUnpackRoundTrip)
{
    const RIova iova = RIova::pack(0x1234567 & 0x3fffffff, 0x2ffff, 0xabcd);
    EXPECT_EQ(iova.offset(), 0x1234567u & 0x3fffffffu);
    EXPECT_EQ(iova.rentry(), 0x2ffffu);
    EXPECT_EQ(iova.rid(), 0xabcdu);
}

TEST(RIovaTest, WithOffsetPreservesRidAndRentry)
{
    const RIova base = RIova::pack(0, 7, 3);
    const RIova moved = base.withOffset(4096);
    EXPECT_EQ(moved.offset(), 4096u);
    EXPECT_EQ(moved.rentry(), 7u);
    EXPECT_EQ(moved.rid(), 3u);
}

TEST(RPteTest, WordSerializationRoundTrip)
{
    RPte pte;
    pte.phys_addr = 0xdeadbeef123;
    pte.size = 0x3fffffff; // full 30 bits
    pte.dir = DmaDir::kFromDevice;
    pte.valid = true;
    const RPte r = RPte::fromWords(pte.word0(), pte.word1());
    EXPECT_EQ(r.phys_addr, pte.phys_addr);
    EXPECT_EQ(r.size, pte.size);
    EXPECT_EQ(r.dir, pte.dir);
    EXPECT_TRUE(r.valid);
}

class RiommuTest : public ::testing::Test
{
  protected:
    static constexpr u32 kRingSize = 8;

    RiommuTest()
        : riommu(pm, cost),
          dev(riommu, pm, bdf, std::vector<u32>{kRingSize, kRingSize},
              /*coherent=*/true,
              cost, &acct)
    {
        buf = pm.allocContiguous(kPageSize);
    }

    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    CycleAccount acct;
    Bdf bdf{0, 4, 0};
    Riommu riommu;
    RDevice dev;
    PhysAddr buf = 0;
};

TEST_F(RiommuTest, MapProducesSequentialRentries)
{
    for (u32 i = 0; i < kRingSize; ++i) {
        auto iova = dev.map(0, buf + i * 16, 16, DmaDir::kBidir);
        ASSERT_TRUE(iova.isOk());
        EXPECT_EQ(iova.value().rentry(), i);
        EXPECT_EQ(iova.value().rid(), 0u);
        EXPECT_EQ(iova.value().offset(), 0u);
    }
    EXPECT_EQ(dev.nmapped(0), kRingSize);
}

TEST_F(RiommuTest, TranslateReturnsPhysicalAddress)
{
    auto iova = dev.map(0, buf + 100, 64, DmaDir::kFromDevice);
    ASSERT_TRUE(iova.isOk());
    auto t = riommu.translate(bdf, iova.value().withOffset(10),
                              Access::kWrite, 4);
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().pa, buf + 110);
}

TEST_F(RiommuTest, OverflowWhenRingIsFull)
{
    for (u32 i = 0; i < kRingSize; ++i)
        ASSERT_TRUE(dev.map(0, buf, 16, DmaDir::kBidir).isOk());
    auto r = dev.map(0, buf, 16, DmaDir::kBidir);
    EXPECT_EQ(r.status().code(), ErrorCode::kOverflow);
}

TEST_F(RiommuTest, UnmapFreesSlotAndWrapsAround)
{
    std::vector<RIova> iovas;
    for (u32 i = 0; i < kRingSize; ++i)
        iovas.push_back(dev.map(0, buf, 16, DmaDir::kBidir).value());
    // Free-and-reuse FIFO for 5 laps of the ring.
    for (u32 lap = 0; lap < 5; ++lap) {
        for (u32 i = 0; i < kRingSize; ++i) {
            ASSERT_TRUE(dev.unmap(iovas[i], false).isOk());
            auto fresh = dev.map(0, buf, 16, DmaDir::kBidir);
            ASSERT_TRUE(fresh.isOk());
            EXPECT_EQ(fresh.value().rentry(),
                      (lap * kRingSize + i) % kRingSize);
            iovas[i] = fresh.value();
        }
    }
    EXPECT_EQ(dev.nmapped(0), kRingSize);
}

TEST_F(RiommuTest, DoubleUnmapFails)
{
    auto iova = dev.map(0, buf, 16, DmaDir::kBidir).value();
    ASSERT_TRUE(dev.unmap(iova, false).isOk());
    EXPECT_EQ(dev.unmap(iova, false).code(), ErrorCode::kNotFound);
}

TEST_F(RiommuTest, RingsAreIndependent)
{
    auto a = dev.map(0, buf, 16, DmaDir::kBidir).value();
    auto b = dev.map(1, buf + 512, 16, DmaDir::kBidir).value();
    EXPECT_EQ(a.rentry(), 0u);
    EXPECT_EQ(b.rentry(), 0u);
    EXPECT_EQ(dev.nmapped(0), 1u);
    EXPECT_EQ(dev.nmapped(1), 1u);
    ASSERT_TRUE(dev.unmap(a, true).isOk());
    // Ring 1's mapping is untouched.
    auto t = riommu.translate(bdf, b, Access::kRead, 1);
    EXPECT_TRUE(t.isOk());
}

// ---- fine-grained protection (the rIOMMU's key safety upgrade) -----------

TEST_F(RiommuTest, OffsetBeyondSizeFaults)
{
    auto iova = dev.map(0, buf, 64, DmaDir::kBidir).value();
    EXPECT_TRUE(
        riommu.translate(bdf, iova.withOffset(63), Access::kRead, 1).isOk());
    auto t = riommu.translate(bdf, iova.withOffset(64), Access::kRead, 1);
    EXPECT_EQ(t.status().code(), ErrorCode::kIoPageFault);
    EXPECT_EQ(riommu.faults().back().reason,
              iommu::FaultReason::kOutOfRange);
}

TEST_F(RiommuTest, LengthOverrunFaults)
{
    auto iova = dev.map(0, buf, 64, DmaDir::kBidir).value();
    EXPECT_TRUE(riommu.translate(bdf, iova, Access::kRead, 64).isOk());
    EXPECT_FALSE(riommu.translate(bdf, iova, Access::kRead, 65).isOk());
    EXPECT_FALSE(
        riommu.translate(bdf, iova.withOffset(32), Access::kRead, 33)
            .isOk());
}

TEST_F(RiommuTest, DirectionViolationFaults)
{
    auto tx = dev.map(0, buf, 64, DmaDir::kToDevice).value();
    EXPECT_TRUE(riommu.translate(bdf, tx, Access::kRead, 1).isOk());
    auto t = riommu.translate(bdf, tx, Access::kWrite, 1);
    EXPECT_EQ(t.status().code(), ErrorCode::kPermission);
    EXPECT_EQ(riommu.faults().back().reason,
              iommu::FaultReason::kPermission);
}

TEST_F(RiommuTest, InvalidRPteFaults)
{
    auto iova = dev.map(0, buf, 16, DmaDir::kBidir).value();
    ASSERT_TRUE(dev.unmap(iova, true).isOk());
    auto t = riommu.translate(bdf, iova, Access::kRead, 1);
    EXPECT_EQ(t.status().code(), ErrorCode::kIoPageFault);
}

TEST_F(RiommuTest, OutOfRangeRidAndRentryFault)
{
    auto bad_rid = RIova::pack(0, 0, 99);
    EXPECT_FALSE(riommu.translate(bdf, bad_rid, Access::kRead, 1).isOk());
    auto bad_rentry = RIova::pack(0, kRingSize, 0);
    EXPECT_FALSE(
        riommu.translate(bdf, bad_rentry, Access::kRead, 1).isOk());
    EXPECT_EQ(riommu.faults().size(), 2u);
}

TEST_F(RiommuTest, UnknownDeviceFaults)
{
    auto t = riommu.translate(Bdf{9, 9, 1}, RIova::pack(0, 0, 0),
                              Access::kRead, 1);
    EXPECT_FALSE(t.isOk());
    EXPECT_EQ(riommu.faults().back().reason,
              iommu::FaultReason::kNoContext);
}

// ---- rIOTLB behaviour ------------------------------------------------------

TEST_F(RiommuTest, SequentialAccessHitsViaPrefetch)
{
    std::vector<RIova> iovas;
    for (u32 i = 0; i < kRingSize; ++i)
        iovas.push_back(dev.map(0, buf + i, 1, DmaDir::kBidir).value());

    ASSERT_TRUE(riommu.translate(bdf, iovas[0], Access::kRead, 1).isOk());
    for (u32 i = 1; i < kRingSize; ++i) {
        auto t = riommu.translate(bdf, iovas[i], Access::kRead, 1);
        ASSERT_TRUE(t.isOk());
        EXPECT_TRUE(t.value().riotlb_hit);
        EXPECT_TRUE(t.value().prefetch_hit)
            << "ring-order access must ride the prefetched next rPTE";
    }
    EXPECT_EQ(riommu.riotlb().stats().walks, 1u)
        << "only the first access walks the flat table";
}

TEST_F(RiommuTest, OutOfOrderAccessIsLegalButWalks)
{
    std::vector<RIova> iovas;
    for (u32 i = 0; i < 4; ++i)
        iovas.push_back(dev.map(0, buf + i, 1, DmaDir::kBidir).value());
    // §4 Applicability: valid IOVAs may be used out of order; the
    // only cost is that the prefetched next entry cannot serve them.
    ASSERT_TRUE(riommu.translate(bdf, iovas[2], Access::kRead, 1).isOk());
    auto t = riommu.translate(bdf, iovas[0], Access::kRead, 1);
    ASSERT_TRUE(t.isOk());
    EXPECT_FALSE(t.value().prefetch_hit);
    auto again = riommu.translate(bdf, iovas[3], Access::kRead, 1);
    ASSERT_TRUE(again.isOk());
}

TEST_F(RiommuTest, OneRiotlbEntryPerRing)
{
    std::vector<RIova> iovas;
    for (u32 i = 0; i < kRingSize; ++i)
        iovas.push_back(dev.map(0, buf + i, 1, DmaDir::kBidir).value());
    for (const RIova &iova : iovas)
        ASSERT_TRUE(riommu.translate(bdf, iova, Access::kRead, 1).isOk());
    EXPECT_EQ(riommu.riotlb().size(), 1u)
        << "a ring may never occupy more than one rIOTLB entry";

    ASSERT_TRUE(dev.map(1, buf, 1, DmaDir::kBidir).isOk());
    auto other =
        riommu.translate(bdf, RIova::pack(0, 0, 1), Access::kRead, 1);
    ASSERT_TRUE(other.isOk());
    EXPECT_EQ(riommu.riotlb().size(), 2u);
}

TEST_F(RiommuTest, EveryNewTranslationImplicitlyInvalidatesPrevious)
{
    auto a = dev.map(0, buf, 1, DmaDir::kBidir).value();
    auto b = dev.map(0, buf + 1, 1, DmaDir::kBidir).value();
    ASSERT_TRUE(riommu.translate(bdf, a, Access::kRead, 1).isOk());
    ASSERT_TRUE(riommu.translate(bdf, b, Access::kRead, 1).isOk());
    const RiotlbEntry *e = riommu.riotlb().peek(bdf.pack(), 0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->rentry, b.rentry()) << "entry now describes b, not a";
}

TEST_F(RiommuTest, EndOfBurstInvalidatesRiotlbEntry)
{
    auto a = dev.map(0, buf, 1, DmaDir::kBidir).value();
    ASSERT_TRUE(riommu.translate(bdf, a, Access::kRead, 1).isOk());
    EXPECT_NE(riommu.riotlb().peek(bdf.pack(), 0), nullptr);
    ASSERT_TRUE(dev.unmap(a, /*end_of_burst=*/false).isOk());
    EXPECT_NE(riommu.riotlb().peek(bdf.pack(), 0), nullptr)
        << "mid-burst unmap must not invalidate";
    auto b = dev.map(0, buf, 1, DmaDir::kBidir).value();
    ASSERT_TRUE(dev.unmap(b, /*end_of_burst=*/true).isOk());
    EXPECT_EQ(riommu.riotlb().peek(bdf.pack(), 0), nullptr);
}

TEST_F(RiommuTest, BurstInvalidationChargedOnlyAtEndOfBurst)
{
    std::vector<RIova> iovas;
    for (u32 i = 0; i < kRingSize; ++i)
        iovas.push_back(dev.map(0, buf, 1, DmaDir::kBidir).value());
    acct.reset();
    for (u32 i = 0; i < kRingSize; ++i) {
        ASSERT_TRUE(
            dev.unmap(iovas[i], /*end_of_burst=*/i + 1 == kRingSize)
                .isOk());
    }
    EXPECT_EQ(acct.get(Cat::kUnmapIotlbInv), cost.iotlb_invalidate_entry)
        << "exactly one invalidation for the whole burst";
}

TEST_F(RiommuTest, PrefetchDisabledStillCorrect)
{
    riommu.setPrefetchEnabled(false);
    std::vector<RIova> iovas;
    for (u32 i = 0; i < kRingSize; ++i)
        iovas.push_back(dev.map(0, buf + i, 1, DmaDir::kBidir).value());
    for (const RIova &iova : iovas) {
        auto t = riommu.translate(bdf, iova, Access::kRead, 1);
        ASSERT_TRUE(t.isOk());
        EXPECT_FALSE(t.value().prefetch_hit);
        EXPECT_EQ(t.value().pa, buf + iova.rentry());
    }
}

TEST_F(RiommuTest, NonCoherentModeChargesFlushPerUpdate)
{
    CycleAccount acct_nc;
    RDevice dev_nc(riommu, pm, Bdf{0, 5, 0}, std::vector<u32>{kRingSize},
                   /*coherent=*/false, cost, &acct_nc);
    ASSERT_TRUE(dev_nc.map(0, buf, 16, DmaDir::kBidir).isOk());
    ASSERT_TRUE(dev.map(0, buf, 16, DmaDir::kBidir).isOk());
    const Cycles nc = acct_nc.get(Cat::kMapPageTable);
    const Cycles c = acct.get(Cat::kMapPageTable);
    EXPECT_EQ(nc - c, cost.memory_barrier + cost.cacheline_flush);
}

TEST_F(RiommuTest, DmaRoundTripThroughRiommu)
{
    auto iova = dev.map(0, buf + 64, 256, DmaDir::kBidir).value();
    const char msg[] = "through the flat table";
    ASSERT_TRUE(riommu.dmaWrite(bdf, iova.withOffset(8), msg, sizeof(msg))
                    .isOk());
    char in[sizeof(msg)] = {};
    ASSERT_TRUE(
        riommu.dmaRead(bdf, iova.withOffset(8), in, sizeof(in)).isOk());
    EXPECT_STREQ(in, msg);
    // Verify physical placement.
    char probe[sizeof(msg)] = {};
    pm.read(buf + 64 + 8, probe, sizeof(probe));
    EXPECT_STREQ(probe, msg);
}

TEST_F(RiommuTest, MapChargesAreTiny)
{
    // The contrast with Table 1: rIOMMU "IOVA allocation" is a tail
    // bump and the flat-table update is one store + sync_mem.
    acct.reset();
    ASSERT_TRUE(dev.map(0, buf, 16, DmaDir::kBidir).isOk());
    EXPECT_EQ(acct.get(Cat::kMapIovaAlloc), cost.locked_rmw);
    EXPECT_LT(acct.get(Cat::kMapPageTable), 100u);
    EXPECT_LT(acct.mapTotal(), 200u);
}

TEST_F(RiommuTest, DeviceTeardownReleasesMemory)
{
    const u64 before = pm.allocatedFrames();
    {
        RDevice scoped(riommu, pm, Bdf{0, 6, 0},
                       std::vector<u32>{1024, 1024, 64}, true,
                       cost, nullptr);
        EXPECT_GT(pm.allocatedFrames(), before);
    }
    EXPECT_EQ(pm.allocatedFrames(), before);
}

} // namespace
} // namespace rio::riommu
