/**
 * @file
 * Tests for the AHCI/SATA model: 32-slot queue, out-of-order
 * completion, serialized media, protection integration.
 */
#include <gtest/gtest.h>

#include <set>

#include "ahci/ahci.h"
#include "dma/dma_context.h"

namespace rio::ahci {
namespace {

using dma::ProtectionMode;

class AhciTest : public ::testing::Test
{
  protected:
    AhciTest()
        : core(sim, ctx.cost()),
          handle(ctx.makeHandle(ProtectionMode::kStrict,
                                iommu::Bdf{0, 5, 0}, &core.acct())),
          disk(sim, core, ctx.memory(), *handle)
    {
    }

    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core;
    std::unique_ptr<dma::DmaHandle> handle;
    AhciDevice disk;
};

TEST_F(AhciTest, ThirtyTwoSlotsNoMore)
{
    const PhysAddr buf = ctx.memory().allocContiguous(64 * kPageSize);
    core.post([&] {
        EXPECT_EQ(disk.freeSlots(), 32u);
        for (u64 i = 0; i < 32; ++i)
            ASSERT_TRUE(disk.issue(false, i * 16, 1, buf).isOk());
        EXPECT_EQ(disk.freeSlots(), 0u);
        auto full = disk.issue(false, 999, 1, buf);
        EXPECT_EQ(full.status().code(), ErrorCode::kOverflow);
    });
    sim.run();
    EXPECT_EQ(disk.completed(), 32u);
    EXPECT_EQ(handle->liveMappings(), 0u);
}

TEST_F(AhciTest, RandomIosCompleteOutOfIssueOrder)
{
    const PhysAddr buf = ctx.memory().allocContiguous(64 * kPageSize);
    std::vector<u32> completion_order;
    disk.setCompletionCallback([&](u32 slot, Status s) {
        ASSERT_TRUE(s.isOk());
        completion_order.push_back(slot);
    });
    core.post([&] {
        // Random LBAs so NCQ reordering has something to do.
        const u64 lbas[] = {900, 100, 500, 300, 700, 200, 800, 50};
        for (u64 lba : lbas)
            ASSERT_TRUE(disk.issue(false, lba, 4, buf).isOk());
    });
    sim.run();
    ASSERT_EQ(completion_order.size(), 8u);
    bool in_order = true;
    for (size_t i = 1; i < completion_order.size(); ++i)
        in_order &= completion_order[i] > completion_order[i - 1];
    EXPECT_FALSE(in_order)
        << "NCQ-style service must reorder random I/O";
}

TEST_F(AhciTest, SequentialIsFasterThanRandom)
{
    const PhysAddr buf = ctx.memory().allocContiguous(64 * kPageSize);
    auto run = [&](bool sequential) {
        des::Simulator s2;
        dma::DmaContext c2;
        des::Core core2(s2, c2.cost());
        auto h2 = c2.makeHandle(ProtectionMode::kNone,
                                iommu::Bdf{0, 5, 0}, &core2.acct());
        AhciDevice d2(s2, core2, c2.memory(), *h2);
        const PhysAddr b2 = c2.memory().allocContiguous(64 * kPageSize);
        u64 done = 0;
        u64 next = 0;
        Rng rng(3);
        std::function<void()> fill = [&] {
            while (next < 64 && d2.freeSlots() > 0) {
                const u64 lba =
                    sequential ? next * 8 : rng.below(100000) * 8;
                ASSERT_TRUE(d2.issue(false, lba, 8, b2).isOk());
                ++next;
            }
        };
        d2.setCompletionCallback([&](u32, Status) {
            ++done;
            fill();
        });
        core2.post(fill);
        s2.run();
        EXPECT_EQ(done, 64u);
        return s2.now();
    };
    (void)buf;
    EXPECT_LT(run(true) * 5, run(false))
        << "seeks must dominate random I/O";
}

TEST_F(AhciTest, WritesMoveDataThroughTranslation)
{
    const PhysAddr buf = ctx.memory().allocFrame();
    core.post(
        [&] { ASSERT_TRUE(disk.issue(true, 10, 1, buf).isOk()); });
    sim.run();
    EXPECT_EQ(disk.completed(), 1u);
    EXPECT_EQ(disk.bytesMoved(), 4096u);
    EXPECT_EQ(ctx.iommu().faults().size(), 0u);
}

} // namespace
} // namespace rio::ahci
