/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */
#include <gtest/gtest.h>

#include <vector>

#include "des/simulator.h"

namespace rio::des {
namespace {

TEST(Simulator, RunsEventsInTimestampOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.scheduleAt(30, [&] { order.push_back(3); });
    sim.scheduleAt(10, [&] { order.push_back(1); });
    sim.scheduleAt(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
    EXPECT_EQ(sim.eventsRun(), 3u);
}

TEST(Simulator, FifoTieBreakAtEqualTimestamps)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.scheduleAt(5, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterIsRelative)
{
    Simulator sim;
    Nanos seen = 0;
    sim.scheduleAt(100, [&] {
        sim.scheduleAfter(50, [&] { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, 150u);
}

TEST(Simulator, EventsCanScheduleMoreEvents)
{
    Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 100)
            sim.scheduleAfter(10, tick);
    };
    sim.scheduleAt(0, tick);
    sim.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(sim.now(), 990u);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool ran = false;
    const EventId id = sim.scheduleAt(10, [&] { ran = true; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id)) << "second cancel is a no-op";
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.eventsRun(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int ran = 0;
    sim.scheduleAt(10, [&] { ++ran; });
    sim.scheduleAt(20, [&] { ++ran; });
    sim.scheduleAt(30, [&] { ++ran; });
    sim.runUntil(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(sim.now(), 20u);
    sim.run();
    EXPECT_EQ(ran, 3);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents)
{
    Simulator sim;
    sim.runUntil(1000);
    EXPECT_EQ(sim.now(), 1000u);
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, IdleReflectsPendingEvents)
{
    Simulator sim;
    EXPECT_TRUE(sim.idle());
    const EventId id = sim.scheduleAt(5, [] {});
    EXPECT_FALSE(sim.idle());
    sim.cancel(id);
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ResetClearsEverything)
{
    Simulator sim;
    bool ran = false;
    sim.scheduleAt(10, [&] { ran = true; });
    sim.reset();
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.now(), 0u);
}

TEST(SimulatorDeathTest, SchedulingInThePastPanics)
{
    Simulator sim;
    sim.scheduleAt(100, [] {});
    sim.run();
    EXPECT_DEATH(sim.scheduleAt(50, [] {}), "past");
}

} // namespace
} // namespace rio::des
