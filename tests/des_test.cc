/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */
#include <gtest/gtest.h>

#include <vector>

#include "des/simulator.h"

namespace rio::des {
namespace {

TEST(Simulator, RunsEventsInTimestampOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.scheduleAt(30, [&] { order.push_back(3); });
    sim.scheduleAt(10, [&] { order.push_back(1); });
    sim.scheduleAt(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
    EXPECT_EQ(sim.eventsRun(), 3u);
}

TEST(Simulator, FifoTieBreakAtEqualTimestamps)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.scheduleAt(5, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterIsRelative)
{
    Simulator sim;
    Nanos seen = 0;
    sim.scheduleAt(100, [&] {
        sim.scheduleAfter(50, [&] { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, 150u);
}

TEST(Simulator, EventsCanScheduleMoreEvents)
{
    Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 100)
            sim.scheduleAfter(10, tick);
    };
    sim.scheduleAt(0, tick);
    sim.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(sim.now(), 990u);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool ran = false;
    const EventId id = sim.scheduleAt(10, [&] { ran = true; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id)) << "second cancel is a no-op";
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.eventsRun(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int ran = 0;
    sim.scheduleAt(10, [&] { ++ran; });
    sim.scheduleAt(20, [&] { ++ran; });
    sim.scheduleAt(30, [&] { ++ran; });
    sim.runUntil(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(sim.now(), 20u);
    sim.run();
    EXPECT_EQ(ran, 3);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents)
{
    Simulator sim;
    sim.runUntil(1000);
    EXPECT_EQ(sim.now(), 1000u);
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, IdleReflectsPendingEvents)
{
    Simulator sim;
    EXPECT_TRUE(sim.idle());
    const EventId id = sim.scheduleAt(5, [] {});
    EXPECT_FALSE(sim.idle());
    sim.cancel(id);
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ResetClearsEverything)
{
    Simulator sim;
    bool ran = false;
    sim.scheduleAt(10, [&] { ran = true; });
    sim.reset();
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.now(), 0u);
}

// --- runUntil edge cases (pinned before the lane refactor) ---------

TEST(Simulator, RunUntilDeadlineEqualToEventTimestampRunsIt)
{
    Simulator sim;
    bool at_deadline = false, after = false;
    sim.scheduleAt(100, [&] { at_deadline = true; });
    sim.scheduleAt(101, [&] { after = true; });
    sim.runUntil(100);
    EXPECT_TRUE(at_deadline) << "an event stamped exactly at the "
                                "deadline belongs to the window";
    EXPECT_FALSE(after);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, RunUntilDeadlineInThePastRunsNothing)
{
    Simulator sim;
    int ran = 0;
    sim.scheduleAt(50, [&] { ++ran; });
    sim.runUntil(50);
    EXPECT_EQ(sim.now(), 50u);
    sim.scheduleAt(200, [&] { ++ran; });
    sim.runUntil(10); // stale deadline: no events, clock untouched
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(sim.now(), 50u);
    sim.run();
    EXPECT_EQ(ran, 2);
}

TEST(Simulator, CancelDuringCallbackPreventsPendingEvent)
{
    Simulator sim;
    bool victim_ran = false;
    EventId victim = 0;
    sim.scheduleAt(10, [&] { EXPECT_TRUE(sim.cancel(victim)); });
    victim = sim.scheduleAt(20, [&] { victim_ran = true; });
    sim.run();
    EXPECT_FALSE(victim_ran);
    EXPECT_EQ(sim.eventsRun(), 1u);
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, CancelOfEqualTimestampLaterEventDuringCallback)
{
    // FIFO tie-break means the canceller (scheduled first) runs first
    // even at the same timestamp; the victim must not fire.
    Simulator sim;
    bool victim_ran = false;
    EventId victim = 0;
    sim.scheduleAt(5, [&] { EXPECT_TRUE(sim.cancel(victim)); });
    victim = sim.scheduleAt(5, [&] { victim_ran = true; });
    sim.run();
    EXPECT_FALSE(victim_ran);
}

TEST(Simulator, ResetWithLiveEventsDropsThemAndKeepsEventsRun)
{
    Simulator sim;
    int ran = 0;
    sim.scheduleAt(10, [&] { ++ran; });
    sim.run();
    const EventId pending = sim.scheduleAt(500, [&] { ++ran; });
    sim.scheduleAt(600, [&] { ++ran; });
    EXPECT_FALSE(sim.idle());
    sim.reset();
    EXPECT_TRUE(sim.idle());
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_EQ(sim.eventsRun(), 1u) << "reset drops events, not history";
    // Ids issued before reset must not cancel anything scheduled after.
    bool fresh_ran = false;
    sim.scheduleAt(5, [&] { fresh_ran = true; });
    EXPECT_FALSE(sim.cancel(pending));
    sim.run();
    EXPECT_TRUE(fresh_ran);
    EXPECT_EQ(ran, 1) << "the dropped events must never fire";
}

// --- cancellation storage (the old tombstone-set pathology) --------

TEST(Simulator, MillionScheduleCancelCyclesStayBounded)
{
    // The old kernel kept every cancelled id in an unordered_set until
    // its heap entry was popped; a schedule+cancel loop therefore grew
    // without bound. Slots must recycle and stale heap entries must be
    // compacted away.
    Simulator sim;
    for (int i = 0; i < 1'000'000; ++i) {
        const EventId id = sim.scheduleAt(1'000'000, [] {});
        EXPECT_TRUE(sim.cancel(id));
    }
    EXPECT_LE(sim.slotsAllocated(), 8u)
        << "cancelled slots must be reused";
    EXPECT_LE(sim.queueSize(), 256u)
        << "stale heap entries must be compacted";
    EXPECT_TRUE(sim.idle());
    sim.run();
    EXPECT_EQ(sim.eventsRun(), 0u);
}

TEST(Simulator, InterleavedCancelKeepsSurvivorsCorrect)
{
    Simulator sim;
    std::vector<int> ran;
    std::vector<EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i)
        ids.push_back(sim.scheduleAt(10 + i, [&ran, i] {
            ran.push_back(i);
        }));
    for (int i = 0; i < 1000; i += 2)
        EXPECT_TRUE(sim.cancel(ids[i]));
    sim.run();
    ASSERT_EQ(ran.size(), 500u);
    for (size_t j = 0; j < ran.size(); ++j)
        EXPECT_EQ(ran[j], static_cast<int>(2 * j + 1));
    EXPECT_EQ(sim.eventsRun(), 500u);
}

TEST(Simulator, LargeCapturesFallBackToHeapAndStillRun)
{
    Simulator sim;
    struct Big
    {
        char blob[200];
    } big{};
    big.blob[0] = 42;
    char seen = 0;
    sim.scheduleAt(1, [big, &seen] { seen = big.blob[0]; });
    sim.run();
    EXPECT_EQ(seen, 42);
}

TEST(SimulatorDeathTest, SchedulingInThePastPanics)
{
    Simulator sim;
    sim.scheduleAt(100, [] {});
    sim.run();
    EXPECT_DEATH(sim.scheduleAt(50, [] {}), "past");
}

} // namespace
} // namespace rio::des
