#!/usr/bin/env bash
# Cluster-fabric determinism regression: bench_cluster_rdma at the
# smallest sweep point must reproduce the checked-in golden byte for
# byte, and must not move when the lanes run on a worker pool. The
# bench itself RIO_ASSERTs the fig7-equivalent mode ordering (none
# cheapest, riommu < strict at 64 QPs/machine), so a passing run
# re-certifies the single-connection-regime result; this script pins
# the numbers. Any diff means cross-machine mail ordering, a stray
# RNG draw, or accounting drift in the RDMA/cluster stack.
#
#   1. bench_cluster_rdma --connections 64 --quick --threads 1
#        ==  checked-in golden (byte for byte)
#   2. --threads 4  ==  --threads 1   (modulo the threads field)
#
# Usage: golden_cluster.sh <bench_cluster_rdma> <golden.json>
set -euo pipefail

bench="$1"
golden="$2"
t1="$(mktemp)"
t4="$(mktemp)"
trap 'rm -f "$t1" "$t4"' EXIT

RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 \
    "$bench" --connections 64 --quick --threads 1 --json "$t1" > /dev/null
RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 \
    "$bench" --connections 64 --quick --threads 4 --json "$t4" > /dev/null

# The threads meta field legitimately records the flag; rows must not.
strip_meta() {
    sed -e 's/"threads": [0-9]*/"threads": 0/' "$1"
}

if ! diff -u "$golden" "$t1"; then
    echo "golden_cluster: --threads 1 diverged from $golden" >&2
    exit 1
fi
if ! diff -u <(strip_meta "$t1") <(strip_meta "$t4"); then
    echo "golden_cluster: --threads 4 diverged from --threads 1" >&2
    exit 1
fi
echo "golden_cluster: fabric sweep is byte-identical across threads"
