/**
 * @file
 * Fault-injection: because every translation structure is resident in
 * simulated physical memory and the hardware models really
 * dereference it, corrupting that memory must misbehave exactly the
 * way hardware would — redirected DMAs, spurious faults, stale
 * caches. These tests pin down that property (it is what makes the
 * functional simulation trustworthy).
 */
#include <gtest/gtest.h>

#include "dma/baseline_handle.h"
#include "dma/dma_context.h"
#include "riommu/rdevice.h"

namespace rio {
namespace {

using iommu::Access;
using iommu::Bdf;
using iommu::DmaDir;

class CorruptionTest : public ::testing::Test
{
  protected:
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    Bdf bdf{0, 3, 0};
};

TEST_F(CorruptionTest, ClearingALeafPteInMemoryKillsTheTranslation)
{
    auto handle = ctx.makeHandle(dma::ProtectionMode::kStrict, bdf, &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 512, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());

    // Find the leaf PTE by walking the real tables, then zero it
    // behind the driver's back (a buggy kernel scribble).
    auto *baseline = static_cast<dma::BaselineDmaHandle *>(handle.get());
    const u64 iova_pfn = m.value().device_addr >> kPageShift;
    ASSERT_TRUE(baseline->pageTable().walk(iova_pfn).isOk());
    // Walk the hierarchy manually to locate the slot.
    PhysAddr table = baseline->pageTable().rootAddr();
    for (int level = 1; level < 4; ++level) {
        const unsigned idx = static_cast<unsigned>(
            (iova_pfn >> (9 * (4 - level))) & 0x1ff);
        table = ctx.memory().read64(table + idx * 8) & ~u64{0xfff};
    }
    const PhysAddr slot = table + (iova_pfn & 0x1ff) * 8;
    ctx.memory().write64(slot, 0);

    u64 v = 0;
    EXPECT_FALSE(handle->deviceRead(m.value().device_addr, &v, 8).isOk())
        << "the walker reads the corrupted memory and faults";
}

TEST_F(CorruptionTest, RedirectedLeafPteMisdirectsTheDma)
{
    auto handle = ctx.makeHandle(dma::ProtectionMode::kStrict, bdf, &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    const PhysAddr victim = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 512, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());

    const u64 iova_pfn = m.value().device_addr >> kPageShift;
    PhysAddr table =
        static_cast<dma::BaselineDmaHandle *>(handle.get())
            ->pageTable()
            .rootAddr();
    for (int level = 1; level < 4; ++level) {
        const unsigned idx = static_cast<unsigned>(
            (iova_pfn >> (9 * (4 - level))) & 0x1ff);
        table = ctx.memory().read64(table + idx * 8) & ~u64{0xfff};
    }
    const PhysAddr slot = table + (iova_pfn & 0x1ff) * 8;
    // Point the PTE at the victim frame (malicious redirection).
    ctx.memory().write64(slot, victim | 0x3);

    u64 v = 0xabcdef;
    ASSERT_TRUE(handle->deviceWrite(m.value().device_addr, &v, 8).isOk());
    EXPECT_EQ(ctx.memory().read64(victim), 0xabcdefu)
        << "the DMA lands where the (corrupted) tables point";
    EXPECT_EQ(ctx.memory().read64(buf), 0u);
}

TEST_F(CorruptionTest, InvalidatingAnRPteInMemoryFaultsTheDevice)
{
    riommu::RDevice dev(ctx.riommu(), ctx.memory(), bdf,
                        std::vector<u32>{8}, true, ctx.cost(), &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto iova = dev.map(0, buf, 64, DmaDir::kBidir).value();

    // Flip the valid bit in the memory-resident rPTE directly.
    riommu::RPte pte = dev.readPte(0, iova.rentry());
    ASSERT_TRUE(pte.valid);
    pte.valid = false;
    const PhysAddr slot =
        ctx.memory().read64(dev.rdeviceBase()) + // ring 0 table addr
        static_cast<u64>(iova.rentry()) * riommu::RPte::kBytes;
    ctx.memory().write64(slot + 8, pte.word1());

    auto t = ctx.riommu().translate(bdf, iova, Access::kRead, 1);
    EXPECT_FALSE(t.isOk());
}

TEST_F(CorruptionTest, ShrinkingAnRPteSizeInMemoryTightensTheBound)
{
    riommu::RDevice dev(ctx.riommu(), ctx.memory(), bdf,
                        std::vector<u32>{8}, true, ctx.cost(), &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto iova = dev.map(0, buf, 1024, DmaDir::kBidir).value();
    ASSERT_TRUE(
        ctx.riommu().translate(bdf, iova, Access::kRead, 1024).isOk());

    riommu::RPte pte = dev.readPte(0, iova.rentry());
    pte.size = 16;
    const PhysAddr slot =
        ctx.memory().read64(dev.rdeviceBase()) +
        static_cast<u64>(iova.rentry()) * riommu::RPte::kBytes;
    ctx.memory().write64(slot + 8, pte.word1());
    // The rIOTLB may still hold the old bound for this entry; force a
    // fresh walk by invalidating the ring.
    ctx.riommu().invalidateRing(bdf, 0);

    EXPECT_TRUE(
        ctx.riommu().translate(bdf, iova, Access::kRead, 16).isOk());
    EXPECT_FALSE(
        ctx.riommu().translate(bdf, iova, Access::kRead, 17).isOk());
}

TEST_F(CorruptionTest, CorruptRRingDescriptorBoundsRentry)
{
    riommu::RDevice dev(ctx.riommu(), ctx.memory(), bdf,
                        std::vector<u32>{8}, true, ctx.cost(), &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto iova = dev.map(0, buf, 64, DmaDir::kBidir).value();
    // Shrink the in-memory rRING size to 0: even valid rIOVAs must
    // now fail the rtable_walk bounds check.
    ctx.memory().write32(dev.rdeviceBase() + 8, 0);
    ctx.riommu().invalidateRing(bdf, 0);
    auto t = ctx.riommu().translate(bdf, iova, Access::kRead, 1);
    EXPECT_FALSE(t.isOk());
    EXPECT_EQ(ctx.riommu().faults().back().reason,
              iommu::FaultReason::kOutOfRange);
}

} // namespace
} // namespace rio
