/**
 * @file
 * Fault-injection: because every translation structure is resident in
 * simulated physical memory and the hardware models really
 * dereference it, corrupting that memory must misbehave exactly the
 * way hardware would — redirected DMAs, spurious faults, stale
 * caches. These tests pin down that property (it is what makes the
 * functional simulation trustworthy).
 */
#include <gtest/gtest.h>

#include "dma/baseline_handle.h"
#include "dma/dma_context.h"
#include "riommu/rdevice.h"

namespace rio {
namespace {

using iommu::Access;
using iommu::Bdf;
using iommu::DmaDir;

class CorruptionTest : public ::testing::Test
{
  protected:
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    Bdf bdf{0, 3, 0};
};

TEST_F(CorruptionTest, ClearingALeafPteInMemoryKillsTheTranslation)
{
    auto handle = ctx.makeHandle(dma::ProtectionMode::kStrict, bdf, &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 512, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());

    // Find the leaf PTE by walking the real tables, then zero it
    // behind the driver's back (a buggy kernel scribble).
    auto *baseline = static_cast<dma::BaselineDmaHandle *>(handle.get());
    const u64 iova_pfn = m.value().device_addr >> kPageShift;
    ASSERT_TRUE(baseline->pageTable().walk(iova_pfn).isOk());
    // Walk the hierarchy manually to locate the slot.
    PhysAddr table = baseline->pageTable().rootAddr();
    for (int level = 1; level < 4; ++level) {
        const unsigned idx = static_cast<unsigned>(
            (iova_pfn >> (9 * (4 - level))) & 0x1ff);
        table = ctx.memory().read64(table + idx * 8) & ~u64{0xfff};
    }
    const PhysAddr slot = table + (iova_pfn & 0x1ff) * 8;
    ctx.memory().write64(slot, 0);

    u64 v = 0;
    EXPECT_FALSE(handle->deviceRead(m.value().device_addr, &v, 8).isOk())
        << "the walker reads the corrupted memory and faults";

    // The fault is recorded: right reason, right faulting IOVA, and
    // the record is retrievable from the memory-resident fault log.
    ASSERT_FALSE(ctx.iommu().faults().empty());
    const iommu::FaultRecord &rec = ctx.iommu().faults().back();
    EXPECT_EQ(rec.reason, iommu::FaultReason::kNotPresent);
    EXPECT_EQ(rec.iova, m.value().device_addr);
    EXPECT_EQ(rec.bdf.pack(), bdf.pack());
    EXPECT_EQ(rec.access, Access::kRead);
    auto drained = ctx.iommu().faultLog().drain();
    ASSERT_FALSE(drained.empty());
    EXPECT_EQ(drained.back().iova, m.value().device_addr);
    EXPECT_EQ(drained.back().reason, iommu::FaultReason::kNotPresent);
}

TEST_F(CorruptionTest, ReservedBitsInALeafPteFaultAsCorruption)
{
    auto handle = ctx.makeHandle(dma::ProtectionMode::kStrict, bdf, &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 512, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());

    auto *baseline = static_cast<dma::BaselineDmaHandle *>(handle.get());
    const u64 iova_pfn = m.value().device_addr >> kPageShift;
    const PhysAddr slot = baseline->pageTable().leafSlot(iova_pfn);
    ASSERT_NE(slot, 0u);
    // Set a must-be-zero high bit (bits 52+ are reserved): hardware
    // reports this as a malformed PTE, not as not-present.
    ctx.memory().write64(slot, ctx.memory().read64(slot) |
                                   (u64{1} << 55));

    u64 v = 0;
    Status s = handle->deviceRead(m.value().device_addr, &v, 8);
    ASSERT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::kCorrupted);
    ASSERT_FALSE(ctx.iommu().faults().empty());
    EXPECT_EQ(ctx.iommu().faults().back().reason,
              iommu::FaultReason::kReservedBit);
    EXPECT_EQ(ctx.iommu().faults().back().iova, m.value().device_addr);
}

TEST_F(CorruptionTest, RedirectedLeafPteMisdirectsTheDma)
{
    auto handle = ctx.makeHandle(dma::ProtectionMode::kStrict, bdf, &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    const PhysAddr victim = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 512, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());

    const u64 iova_pfn = m.value().device_addr >> kPageShift;
    PhysAddr table =
        static_cast<dma::BaselineDmaHandle *>(handle.get())
            ->pageTable()
            .rootAddr();
    for (int level = 1; level < 4; ++level) {
        const unsigned idx = static_cast<unsigned>(
            (iova_pfn >> (9 * (4 - level))) & 0x1ff);
        table = ctx.memory().read64(table + idx * 8) & ~u64{0xfff};
    }
    const PhysAddr slot = table + (iova_pfn & 0x1ff) * 8;
    // Point the PTE at the victim frame (malicious redirection).
    ctx.memory().write64(slot, victim | 0x3);

    u64 v = 0xabcdef;
    ASSERT_TRUE(handle->deviceWrite(m.value().device_addr, &v, 8).isOk());
    EXPECT_EQ(ctx.memory().read64(victim), 0xabcdefu)
        << "the DMA lands where the (corrupted) tables point";
    EXPECT_EQ(ctx.memory().read64(buf), 0u);
}

TEST_F(CorruptionTest, InvalidatingAnRPteInMemoryFaultsTheDevice)
{
    riommu::RDevice dev(ctx.riommu(), ctx.memory(), bdf,
                        std::vector<u32>{8}, true, ctx.cost(), &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto iova = dev.map(0, buf, 64, DmaDir::kBidir).value();

    // Flip the valid bit in the memory-resident rPTE directly.
    riommu::RPte pte = dev.readPte(0, iova.rentry());
    ASSERT_TRUE(pte.valid);
    pte.valid = false;
    const PhysAddr slot =
        ctx.memory().read64(dev.rdeviceBase()) + // ring 0 table addr
        static_cast<u64>(iova.rentry()) * riommu::RPte::kBytes;
    ctx.memory().write64(slot + 8, pte.word1());

    auto t = ctx.riommu().translate(bdf, iova, Access::kRead, 1);
    EXPECT_FALSE(t.isOk());

    // The per-ring fault latch holds the first fault of ring 0, with
    // the faulting rIOVA and reason; other rings are untouched.
    const iommu::FaultRecord *latched = ctx.riommu().ringFault(bdf, 0);
    ASSERT_NE(latched, nullptr);
    EXPECT_EQ(latched->reason, iommu::FaultReason::kNotPresent);
    EXPECT_EQ(latched->iova, iova.raw);
    EXPECT_EQ(latched->bdf.pack(), bdf.pack());
    EXPECT_EQ(ctx.riommu().ringFault(bdf, 1), nullptr);
}

TEST_F(CorruptionTest, ReservedBitsInAnRPteFaultAsCorruption)
{
    riommu::RDevice dev(ctx.riommu(), ctx.memory(), bdf,
                        std::vector<u32>{8}, true, ctx.cost(), &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto iova = dev.map(0, buf, 64, DmaDir::kBidir).value();

    // Set a must-be-zero bit above the rPTE's defined fields.
    const PhysAddr slot =
        ctx.memory().read64(dev.rdeviceBase()) +
        static_cast<u64>(iova.rentry()) * riommu::RPte::kBytes;
    ctx.memory().write64(slot + 8, ctx.memory().read64(slot + 8) |
                                       (u64{1} << 40));
    ctx.riommu().invalidateRing(bdf, 0);

    auto t = ctx.riommu().translate(bdf, iova, Access::kRead, 1);
    ASSERT_FALSE(t.isOk());
    EXPECT_EQ(t.status().code(), ErrorCode::kCorrupted);
    const iommu::FaultRecord *latched = ctx.riommu().ringFault(bdf, 0);
    ASSERT_NE(latched, nullptr);
    EXPECT_EQ(latched->reason, iommu::FaultReason::kReservedBit);
    EXPECT_EQ(latched->iova, iova.raw);
}

TEST_F(CorruptionTest, ShrinkingAnRPteSizeInMemoryTightensTheBound)
{
    riommu::RDevice dev(ctx.riommu(), ctx.memory(), bdf,
                        std::vector<u32>{8}, true, ctx.cost(), &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto iova = dev.map(0, buf, 1024, DmaDir::kBidir).value();
    ASSERT_TRUE(
        ctx.riommu().translate(bdf, iova, Access::kRead, 1024).isOk());

    riommu::RPte pte = dev.readPte(0, iova.rentry());
    pte.size = 16;
    const PhysAddr slot =
        ctx.memory().read64(dev.rdeviceBase()) +
        static_cast<u64>(iova.rentry()) * riommu::RPte::kBytes;
    ctx.memory().write64(slot + 8, pte.word1());
    // The rIOTLB may still hold the old bound for this entry; force a
    // fresh walk by invalidating the ring.
    ctx.riommu().invalidateRing(bdf, 0);

    EXPECT_TRUE(
        ctx.riommu().translate(bdf, iova, Access::kRead, 16).isOk());
    EXPECT_FALSE(
        ctx.riommu().translate(bdf, iova, Access::kRead, 17).isOk());
}

TEST_F(CorruptionTest, CorruptRRingDescriptorBoundsRentry)
{
    riommu::RDevice dev(ctx.riommu(), ctx.memory(), bdf,
                        std::vector<u32>{8}, true, ctx.cost(), &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto iova = dev.map(0, buf, 64, DmaDir::kBidir).value();
    // Shrink the in-memory rRING size to 0: even valid rIOVAs must
    // now fail the rtable_walk bounds check.
    ctx.memory().write32(dev.rdeviceBase() + 8, 0);
    ctx.riommu().invalidateRing(bdf, 0);
    auto t = ctx.riommu().translate(bdf, iova, Access::kRead, 1);
    EXPECT_FALSE(t.isOk());
    EXPECT_EQ(ctx.riommu().faults().back().reason,
              iommu::FaultReason::kOutOfRange);
}

} // namespace
} // namespace rio
