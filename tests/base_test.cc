/**
 * @file
 * Unit tests for the base utilities: types helpers, RNG determinism,
 * statistics, tables, strings, Status/Result.
 */
#include <gtest/gtest.h>

#include <set>

#include "base/logging.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/table.h"
#include "base/types.h"

namespace rio {
namespace {

// ---- types ----------------------------------------------------------------

TEST(Types, PageAlignment)
{
    EXPECT_EQ(pageAlignDown(0), 0u);
    EXPECT_EQ(pageAlignDown(4095), 0u);
    EXPECT_EQ(pageAlignDown(4096), 4096u);
    EXPECT_EQ(pageAlignUp(1), 4096u);
    EXPECT_EQ(pageAlignUp(4096), 4096u);
    EXPECT_TRUE(isPageAligned(8192));
    EXPECT_FALSE(isPageAligned(8193));
}

TEST(Types, PagesSpanned)
{
    EXPECT_EQ(pagesSpanned(0, 0), 0u);
    EXPECT_EQ(pagesSpanned(0, 1), 1u);
    EXPECT_EQ(pagesSpanned(0, 4096), 1u);
    EXPECT_EQ(pagesSpanned(0, 4097), 2u);
    // A 2-byte buffer straddling a page boundary spans two pages.
    EXPECT_EQ(pagesSpanned(4095, 2), 2u);
    EXPECT_EQ(pagesSpanned(100, 4096), 2u);
}

// ---- rng ------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    std::set<u64> seen;
    for (int i = 0; i < 1000; ++i) {
        u64 v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values show up
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng r(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic)
{
    Rng a(9);
    Rng fork1 = a.fork();
    Rng b(9);
    Rng fork2 = b.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fork1.next(), fork2.next());
}

// ---- stats ------------------------------------------------------------------

TEST(Accumulator, MeanAndStddev)
{
    Accumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_NEAR(acc.stddev(), 2.13809, 1e-4); // sample stddev
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Histogram, QuantilesBucketed)
{
    Histogram h;
    for (u64 i = 0; i < 100; ++i)
        h.add(10); // bucket [8,16)
    h.add(1000);   // bucket [512,1024) -- wait, 1000 -> [512,1024)
    EXPECT_EQ(h.count(), 101u);
    EXPECT_EQ(h.quantile(0.5), 8u);
    EXPECT_EQ(h.quantile(1.0), 512u);
}

TEST(CounterSet, IncrementAndLookup)
{
    CounterSet c;
    c.inc("a");
    c.inc("a", 4);
    EXPECT_EQ(c.get("a"), 5u);
    EXPECT_EQ(c.get("missing"), 0u);
}

// ---- table ------------------------------------------------------------------

TEST(Table, AlignedRendering)
{
    Table t({"mode", "cycles"});
    t.addRow({"strict", "4618"});
    t.addRow({"riommu", "109"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("strict"), std::string::npos);
    EXPECT_NE(s.find("4618"), std::string::npos);
    // All lines equally wide header-to-data (right-aligned numbers).
    EXPECT_NE(s.find("riommu"), std::string::npos);
}

TEST(Table, NumericRowFormatting)
{
    Table t({"x", "a", "b"});
    t.addRow("r", {1.234, 5.0}, 1);
    const std::string s = t.toString();
    EXPECT_NE(s.find("1.2"), std::string::npos);
    EXPECT_NE(s.find("5.0"), std::string::npos);
}

TEST(TableDeathTest, ArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

// ---- strings ------------------------------------------------------------------

TEST(Strings, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strprintf("%.2f", 1.005), "1.00");
}

TEST(Strings, BitRate)
{
    EXPECT_EQ(formatBitRate(39.6e9), "39.60 Gbps");
    EXPECT_EQ(formatBitRate(1.5e6), "1.50 Mbps");
    EXPECT_EQ(formatBitRate(999), "999 bps");
}

TEST(Strings, Split)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
    EXPECT_TRUE(split("", ',').empty());
}

// ---- status ------------------------------------------------------------------

TEST(Status, OkByDefault)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(Status, ErrorCarriesMessage)
{
    Status s(ErrorCode::kIoPageFault, "boom");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.toString(), "IO_PAGE_FAULT: boom");
}

TEST(Result, HoldsValueOrStatus)
{
    Result<int> ok(5);
    EXPECT_TRUE(ok.isOk());
    EXPECT_EQ(ok.value(), 5);
    EXPECT_TRUE(ok.status().isOk());

    Result<int> err(Status(ErrorCode::kNotFound, "nope"));
    EXPECT_FALSE(err.isOk());
    EXPECT_EQ(err.status().code(), ErrorCode::kNotFound);
}

TEST(ResultDeathTest, ValueOnErrorPanics)
{
    Result<int> err(Status(ErrorCode::kNotFound, "nope"));
    EXPECT_DEATH((void)err.value(), "value\\(\\) on error");
}

} // namespace
} // namespace rio
