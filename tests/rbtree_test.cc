/**
 * @file
 * Unit and property tests for the red-black tree underneath the IOVA
 * allocators. The property sweeps run randomized insert/erase
 * workloads and check the RB invariants after every step.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "base/rng.h"
#include "iova/rbtree.h"

namespace rio::iova {
namespace {

TEST(RbTree, EmptyTree)
{
    RbTree t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.first(), nullptr);
    EXPECT_EQ(t.last(), nullptr);
    EXPECT_EQ(t.findContaining(5, nullptr), nullptr);
    EXPECT_TRUE(t.validate());
}

TEST(RbTree, InsertAndFind)
{
    RbTree t;
    t.insert(10, 19, nullptr, nullptr);
    t.insert(30, 39, nullptr, nullptr);
    EXPECT_EQ(t.size(), 2u);
    ASSERT_NE(t.findContaining(15, nullptr), nullptr);
    EXPECT_EQ(t.findContaining(15, nullptr)->pfn_lo, 10u);
    EXPECT_EQ(t.findContaining(25, nullptr), nullptr) << "gap between ranges";
    EXPECT_EQ(t.findContaining(39, nullptr)->pfn_lo, 30u);
    EXPECT_TRUE(t.validate());
}

TEST(RbTree, FirstLastNextPrevTraversal)
{
    RbTree t;
    for (u64 lo : {50, 10, 30, 70, 90})
        t.insert(lo, lo + 5, nullptr, nullptr);

    EXPECT_EQ(t.first()->pfn_lo, 10u);
    EXPECT_EQ(t.last()->pfn_lo, 90u);

    std::vector<u64> forward;
    for (RbTree::Node *n = t.first(); n; n = t.next(n))
        forward.push_back(n->pfn_lo);
    EXPECT_EQ(forward, (std::vector<u64>{10, 30, 50, 70, 90}));

    std::vector<u64> backward;
    for (RbTree::Node *n = t.last(); n; n = t.prev(n))
        backward.push_back(n->pfn_lo);
    EXPECT_EQ(backward, (std::vector<u64>{90, 70, 50, 30, 10}));
}

TEST(RbTree, EraseKeepsOrderAndInvariants)
{
    RbTree t;
    std::vector<RbTree::Node *> nodes;
    for (u64 lo = 0; lo < 100; lo += 10)
        nodes.push_back(t.insert(lo, lo + 9, nullptr, nullptr));

    t.erase(nodes[3], nullptr, nullptr); // 30..39
    t.erase(nodes[0], nullptr, nullptr); // 0..9
    EXPECT_EQ(t.size(), 8u);
    EXPECT_TRUE(t.validate());
    EXPECT_EQ(t.findContaining(35, nullptr), nullptr);
    EXPECT_EQ(t.first()->pfn_lo, 10u);
}

TEST(RbTree, VisitCountersAreCharged)
{
    RbTree t;
    for (u64 lo = 0; lo < 1000; lo += 10)
        t.insert(lo, lo + 9, nullptr, nullptr);
    u64 visits = 0;
    ASSERT_NE(t.findContaining(555, &visits), nullptr);
    EXPECT_GE(visits, 1u);
    EXPECT_LE(visits, 10u) << "search depth must be logarithmic";

    u64 ins_visits = 0, rebal = 0;
    t.insert(10000, 10009, &ins_visits, &rebal);
    EXPECT_GE(ins_visits, 1u);
}

TEST(RbTreeDeathTest, OverlappingInsertPanics)
{
    RbTree t;
    t.insert(10, 19, nullptr, nullptr);
    EXPECT_DEATH(t.insert(15, 25, nullptr, nullptr), "overlap");
}

// ---- property sweep: randomized insert/erase against a model -------------

struct SweepParam
{
    u64 seed;
    int ops;
    u64 universe; // number of disjoint slots
};

class RbTreeSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(RbTreeSweep, MatchesModelAndKeepsInvariants)
{
    const SweepParam p = GetParam();
    Rng rng(p.seed);
    RbTree t;
    std::map<u64, RbTree::Node *> model; // slot -> node

    for (int i = 0; i < p.ops; ++i) {
        const u64 slot = rng.below(p.universe);
        const u64 lo = slot * 10;
        auto it = model.find(slot);
        if (it == model.end()) {
            model[slot] = t.insert(lo, lo + 9, nullptr, nullptr);
        } else {
            t.erase(it->second, nullptr, nullptr);
            model.erase(it);
        }
        ASSERT_EQ(t.size(), model.size());
        if (i % 64 == 0) {
            ASSERT_TRUE(t.validate()) << "after op " << i;
        }
    }
    ASSERT_TRUE(t.validate());

    // Full in-order traversal must match the model exactly.
    auto mit = model.begin();
    for (RbTree::Node *n = t.first(); n; n = t.next(n), ++mit) {
        ASSERT_NE(mit, model.end());
        EXPECT_EQ(n->pfn_lo, mit->first * 10);
    }
    EXPECT_EQ(mit, model.end());

    // Lookups agree with the model for every slot.
    for (u64 slot = 0; slot < p.universe; ++slot) {
        RbTree::Node *n = t.findContaining(slot * 10 + 5, nullptr);
        EXPECT_EQ(n != nullptr, model.count(slot) == 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedSweeps, RbTreeSweep,
    ::testing::Values(SweepParam{1, 500, 40}, SweepParam{2, 2000, 200},
                      SweepParam{3, 5000, 64}, SweepParam{4, 3000, 1000},
                      SweepParam{99, 8000, 16}));

} // namespace
} // namespace rio::iova
