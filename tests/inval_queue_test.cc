/**
 * @file
 * Tests for the VT-d queued-invalidation model: descriptors really
 * land in the memory-resident ring, the wait handshake works, the
 * IOTLB is purged, wrap-around is clean, and the composed cost equals
 * the paper's measured constant.
 */
#include <gtest/gtest.h>

#include "iommu/inval_queue.h"

namespace rio::iommu {
namespace {

using cycles::Cat;

class InvalQueueTest : public ::testing::Test
{
  protected:
    InvalQueueTest() : iommu(pm, cost), table(pm, false, cost, nullptr)
    {
        iommu.attachDevice(bdf, &table);
    }

    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    cycles::CycleAccount acct;
    Iommu iommu{pm, cost};
    Bdf bdf{0, 3, 0};
    IoPageTable table{pm, false, cost, nullptr};
};

TEST_F(InvalQueueTest, DescriptorsAreMemoryResident)
{
    InvalQueue qi(pm, iommu, cost, 8);
    qi.invalidateEntrySync(bdf, 0x42, &acct);
    // Two descriptors were written: entry + wait.
    const QiDescriptor d0 = qi.descriptorAt(0);
    const QiDescriptor d1 = qi.descriptorAt(1);
    EXPECT_EQ(d0.type(), QiDescriptor::Type::kIotlbEntry);
    EXPECT_EQ(d0.sid(), bdf.pack());
    EXPECT_EQ(d0.word1, 0x42u);
    EXPECT_EQ(d1.type(), QiDescriptor::Type::kWait);
    EXPECT_EQ(qi.stats().submitted, 2u);
    EXPECT_EQ(qi.stats().waits, 1u);
}

TEST_F(InvalQueueTest, PurgesTheIotlbEntry)
{
    InvalQueue qi(pm, iommu, cost);
    ASSERT_TRUE(table.map(0x10, 0x99, DmaDir::kBidir).isOk());
    ASSERT_TRUE(iommu.translate(bdf, 0x10000, Access::kRead).isOk());
    ASSERT_TRUE(iommu.iotlb().contains(bdf.pack(), 0x10));
    qi.invalidateEntrySync(bdf, 0x10, &acct);
    EXPECT_FALSE(iommu.iotlb().contains(bdf.pack(), 0x10));
}

TEST_F(InvalQueueTest, GlobalFlushEmptiesTheIotlb)
{
    InvalQueue qi(pm, iommu, cost);
    for (u64 i = 0; i < 8; ++i) {
        ASSERT_TRUE(table.map(i, 100 + i, DmaDir::kBidir).isOk());
        ASSERT_TRUE(
            iommu.translate(bdf, i << kPageShift, Access::kRead).isOk());
    }
    EXPECT_GT(iommu.iotlb().validEntries(), 0u);
    qi.flushAllSync(&acct, Cat::kUnmapOther);
    EXPECT_EQ(iommu.iotlb().validEntries(), 0u);
    EXPECT_EQ(qi.stats().global_flushes, 1u);
}

TEST_F(InvalQueueTest, CostComposesToThePaperConstant)
{
    InvalQueue qi(pm, iommu, cost);
    qi.invalidateEntrySync(bdf, 1, &acct);
    EXPECT_EQ(acct.get(Cat::kUnmapIotlbInv), cost.iotlb_invalidate_entry)
        << "submit + doorbell + hw round trip + spin == 2,150";
    EXPECT_EQ(acct.ops(Cat::kUnmapIotlbInv), 1u);
}

TEST_F(InvalQueueTest, WrapsAroundCleanly)
{
    InvalQueue qi(pm, iommu, cost, 4);
    for (int i = 0; i < 10; ++i)
        qi.invalidateEntrySync(bdf, static_cast<u64>(i), &acct);
    EXPECT_EQ(qi.stats().submitted, 20u);
    EXPECT_EQ(qi.stats().waits, 10u);
    EXPECT_GE(qi.stats().wraps, 4u);
    EXPECT_LT(qi.tail(), qi.entries());
}

TEST_F(InvalQueueTest, FlushChargeDoesNotBumpOpCount)
{
    InvalQueue qi(pm, iommu, cost);
    acct.charge(Cat::kUnmapOther, 1); // one op on record
    qi.flushAllSync(&acct, Cat::kUnmapOther);
    EXPECT_EQ(acct.ops(Cat::kUnmapOther), 1u)
        << "flush is amortized bookkeeping, not a new op";
    EXPECT_GT(acct.get(Cat::kUnmapOther), 2000u);
}

} // namespace
} // namespace rio::iommu
