/**
 * @file
 * Tests for the NVMe-like device model: submission/completion queue
 * mechanics, data integrity through translation, queue-full
 * backpressure, protection enforcement and teardown.
 */
#include <gtest/gtest.h>

#include <map>

#include "dma/dma_context.h"
#include "nvme/nvme.h"

namespace rio::nvme {
namespace {

using dma::ProtectionMode;

class NvmeTest : public ::testing::TestWithParam<ProtectionMode>
{
  protected:
    NvmeTest()
        : core(sim, ctx.cost()),
          handle(ctx.makeHandle(GetParam(), iommu::Bdf{0, 6, 0},
                                &core.acct(),
                                NvmeDevice::riommuRingSizes())),
          ssd(sim, core, ctx.memory(), *handle)
    {
        ssd.bringUp();
    }

    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core;
    std::unique_ptr<dma::DmaHandle> handle;
    NvmeDevice ssd;
};

TEST_P(NvmeTest, WriteThenReadRoundTrip)
{
    const PhysAddr buf = ctx.memory().allocFrame();
    std::vector<u8> pattern(4096);
    for (size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<u8>(i * 7);
    ctx.memory().write(buf, pattern.data(), pattern.size());

    std::map<u32, Status> results;
    ssd.setCompletionCallback(
        [&](u32 cid, Status s) { results[cid] = s; });

    u32 write_cid = 0;
    core.post([&] {
        auto c = ssd.submit(Opcode::kWrite, 42, 1, buf);
        ASSERT_TRUE(c.isOk());
        write_cid = c.value();
    });
    sim.run();
    ASSERT_TRUE(results.count(write_cid));
    EXPECT_TRUE(results[write_cid].isOk());
    EXPECT_EQ(ssd.flashRead(42, 1), pattern);

    // Read it back into a different buffer.
    const PhysAddr rbuf = ctx.memory().allocFrame();
    u32 read_cid = 0;
    core.post([&] {
        auto c = ssd.submit(Opcode::kRead, 42, 1, rbuf);
        ASSERT_TRUE(c.isOk());
        read_cid = c.value();
    });
    sim.run();
    ASSERT_TRUE(results.count(read_cid));
    EXPECT_TRUE(results[read_cid].isOk());
    std::vector<u8> out(4096);
    ctx.memory().read(rbuf, out.data(), out.size());
    EXPECT_EQ(out, pattern);
    EXPECT_EQ(ssd.dmaFaults(), 0u);
}

TEST_P(NvmeTest, ManyCommandsCompleteInOrderAndUnmap)
{
    const PhysAddr buf = ctx.memory().allocContiguous(8 * 4096);
    u64 done = 0;
    ssd.setCompletionCallback([&](u32, Status s) {
        EXPECT_TRUE(s.isOk());
        ++done;
    });
    const u64 live0 = handle->liveMappings();
    u64 submitted = 0;
    std::function<void()> pump = [&] {
        while (submitted < 300 && ssd.submitSpace() > 0 &&
               submitted - done < 8) {
            ASSERT_TRUE(ssd.submit(Opcode::kWrite, submitted, 1,
                                   buf + (submitted % 8) * 4096)
                            .isOk());
            ++submitted;
        }
    };
    ssd.setCompletionCallback([&](u32, Status s) {
        EXPECT_TRUE(s.isOk());
        ++done;
        pump();
    });
    core.post(pump);
    sim.run();
    EXPECT_EQ(done, 300u);
    EXPECT_EQ(ssd.completed(), 300u);
    EXPECT_EQ(handle->liveMappings(), live0)
        << "every data mapping must be recycled";
}

INSTANTIATE_TEST_SUITE_P(
    Modes, NvmeTest,
    ::testing::Values(ProtectionMode::kStrict, ProtectionMode::kRiommu,
                      ProtectionMode::kNone),
    [](const ::testing::TestParamInfo<ProtectionMode> &info) {
        std::string n = dma::modeName(info.param);
        for (char &c : n) {
            if (c == '+')
                c = 'P';
            if (c == '-')
                c = 'M';
        }
        return n;
    });

TEST(NvmeQueueTest, SubmissionQueueBackpressure)
{
    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core(sim, ctx.cost());
    NvmeProfile profile;
    profile.queue_entries = 4;
    auto handle = ctx.makeHandle(ProtectionMode::kNone,
                                 iommu::Bdf{0, 6, 0}, &core.acct());
    NvmeDevice ssd(sim, core, ctx.memory(), *handle, profile);
    ssd.bringUp();
    const PhysAddr buf = ctx.memory().allocFrame();
    core.post([&] {
        EXPECT_EQ(ssd.submitSpace(), 3u); // entries - 1
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(ssd.submit(Opcode::kWrite, i, 1, buf).isOk());
        auto full = ssd.submit(Opcode::kWrite, 9, 1, buf);
        EXPECT_EQ(full.status().code(), ErrorCode::kOverflow);
    });
    sim.run();
    EXPECT_EQ(ssd.completed(), 3u);
}

TEST(NvmeQueueTest, ReadDirectionMappingRejectsDeviceReads)
{
    // A read command's buffer is mapped kFromDevice; the device may
    // only WRITE it. The model obeys: data lands, no faults.
    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core(sim, ctx.cost());
    auto handle =
        ctx.makeHandle(ProtectionMode::kStrict, iommu::Bdf{0, 6, 0},
                       &core.acct());
    NvmeDevice ssd(sim, core, ctx.memory(), *handle);
    ssd.bringUp();
    ssd.flashWrite(7, std::vector<u8>(4096, 0x11));
    const PhysAddr buf = ctx.memory().allocFrame();
    core.post(
        [&] { ASSERT_TRUE(ssd.submit(Opcode::kRead, 7, 1, buf).isOk()); });
    sim.run();
    EXPECT_EQ(ssd.dmaFaults(), 0u);
    EXPECT_EQ(ctx.memory().read8(buf), 0x11);
}

TEST(NvmeQueueTest, UnknownBlocksReadAsZero)
{
    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core(sim, ctx.cost());
    auto handle = ctx.makeHandle(ProtectionMode::kNone,
                                 iommu::Bdf{0, 6, 0}, &core.acct());
    NvmeDevice ssd(sim, core, ctx.memory(), *handle);
    ssd.bringUp();
    const PhysAddr buf = ctx.memory().allocFrame();
    ctx.memory().write64(buf, ~u64{0});
    core.post([&] {
        ASSERT_TRUE(ssd.submit(Opcode::kRead, 12345, 1, buf).isOk());
    });
    sim.run();
    EXPECT_EQ(ctx.memory().read64(buf), 0u);
}

TEST(NvmeQueueTest, ShutDownReleasesMappings)
{
    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core(sim, ctx.cost());
    auto handle = ctx.makeHandle(ProtectionMode::kStrict,
                                 iommu::Bdf{0, 6, 0}, &core.acct());
    {
        NvmeDevice ssd(sim, core, ctx.memory(), *handle);
        ssd.bringUp();
        EXPECT_EQ(handle->liveMappings(), 2u); // SQ + CQ
        ssd.shutDown();
    }
    EXPECT_EQ(handle->liveMappings(), 0u);
}

} // namespace
} // namespace rio::nvme
