/**
 * @file
 * Integration tests over the full simulation stack: the workload
 * drivers reproduce the paper's qualitative results as testable
 * properties — mode ordering, calibration anchors, line-rate capping,
 * latency ordering, and bit-for-bit determinism.
 */
#include <gtest/gtest.h>

#include "workloads/netperf_rr.h"
#include "workloads/storage.h"
#include "workloads/request_load.h"
#include "workloads/stream.h"

namespace rio::workloads {
namespace {

using dma::ProtectionMode;

StreamParams
quickStream(const nic::NicProfile &profile)
{
    StreamParams p = streamParamsFor(profile);
    p.measure_packets = 6000;
    p.warmup_packets = 1500;
    return p;
}

TEST(StreamTest, NoneModeHitsCalibratedCyclesPerPacket)
{
    const auto r = runStream(ProtectionMode::kNone, nic::mlxProfile(),
                             quickStream(nic::mlxProfile()));
    // Paper Figure 7: C_none = 1,816 cycles/packet.
    EXPECT_NEAR(r.cycles_per_packet, 1816.0, 40.0);
    EXPECT_GT(r.throughput_gbps, 15.0);
    EXPECT_GT(r.cpu, 0.95) << "mlx stream is CPU-bound";
}

TEST(StreamTest, ThroughputFollowsTheInverseCycleModel)
{
    // Figure 8's law: throughput ~ 1/C.
    const auto none = runStream(ProtectionMode::kNone, nic::mlxProfile(),
                                quickStream(nic::mlxProfile()));
    const auto strict = runStream(ProtectionMode::kStrict,
                                  nic::mlxProfile(),
                                  quickStream(nic::mlxProfile()));
    const double ratio_tput = none.throughput_gbps / strict.throughput_gbps;
    const double ratio_c = strict.cycles_per_packet / none.cycles_per_packet;
    EXPECT_NEAR(ratio_tput, ratio_c, 0.15 * ratio_c);
}

TEST(StreamTest, ModeOrderingMatchesThePaper)
{
    // Paper Fig. 12 mlx/stream: strict < strict+ < defer < defer+ <
    // riommu- < riommu < none.
    const ProtectionMode order[] = {
        ProtectionMode::kStrict,   ProtectionMode::kStrictPlus,
        ProtectionMode::kDefer,    ProtectionMode::kDeferPlus,
        ProtectionMode::kRiommuNc, ProtectionMode::kRiommu,
        ProtectionMode::kNone};
    double prev = 0;
    for (ProtectionMode mode : order) {
        const auto r = runStream(mode, nic::mlxProfile(),
                                 quickStream(nic::mlxProfile()));
        EXPECT_GT(r.throughput_gbps, prev)
            << dma::modeName(mode) << " must beat the previous mode";
        prev = r.throughput_gbps;
    }
}

TEST(StreamTest, RiommuVsStrictGapIsLarge)
{
    const auto strict = runStream(ProtectionMode::kStrict,
                                  nic::mlxProfile(),
                                  quickStream(nic::mlxProfile()));
    const auto riommu = runStream(ProtectionMode::kRiommu,
                                  nic::mlxProfile(),
                                  quickStream(nic::mlxProfile()));
    // Paper: 7.56x. Require the right order of magnitude.
    EXPECT_GT(riommu.throughput_gbps / strict.throughput_gbps, 4.0);
    EXPECT_LT(riommu.throughput_gbps / strict.throughput_gbps, 12.0);
}

TEST(StreamTest, BrcmSaturatesLineRateExceptStrict)
{
    // Paper Fig. 12 bottom/left: all modes but strict reach 10 GbE
    // line rate and CPU consumption becomes the metric. Our brcm
    // calibration reproduces that for defer+/riommu/none (plain
    // defer lands at ~96% of line rate; see EXPERIMENTS.md).
    double prev_cpu = 0;
    for (ProtectionMode mode :
         {ProtectionMode::kNone, ProtectionMode::kRiommu,
          ProtectionMode::kDeferPlus}) {
        const auto r = runStream(mode, nic::brcmProfile(),
                                 quickStream(nic::brcmProfile()));
        EXPECT_GT(r.throughput_gbps, 9.0) << dma::modeName(mode);
        EXPECT_LT(r.cpu, 0.97) << dma::modeName(mode);
        EXPECT_GT(r.cpu, prev_cpu) << dma::modeName(mode)
                                   << ": CPU is the differentiator";
        prev_cpu = r.cpu;
    }
    const auto strict = runStream(ProtectionMode::kStrict,
                                  nic::brcmProfile(),
                                  quickStream(nic::brcmProfile()));
    EXPECT_LT(strict.throughput_gbps, 8.0)
        << "strict cannot reach line rate";
    EXPECT_GT(strict.cpu, 0.99);
}

TEST(StreamTest, DeterministicAcrossRuns)
{
    const auto a = runStream(ProtectionMode::kStrict, nic::mlxProfile(),
                             quickStream(nic::mlxProfile()));
    const auto b = runStream(ProtectionMode::kStrict, nic::mlxProfile(),
                             quickStream(nic::mlxProfile()));
    EXPECT_EQ(a.acct.total(), b.acct.total());
    EXPECT_DOUBLE_EQ(a.throughput_gbps, b.throughput_gbps);
    EXPECT_EQ(a.nic.tx_irqs, b.nic.tx_irqs);
}

TEST(StreamTest, NoDmaFaultsInHealthyRuns)
{
    for (ProtectionMode mode :
         {ProtectionMode::kStrict, ProtectionMode::kDefer,
          ProtectionMode::kRiommu, ProtectionMode::kNone}) {
        const auto r = runStream(mode, nic::mlxProfile(),
                                 quickStream(nic::mlxProfile()));
        EXPECT_EQ(r.nic.dma_faults, 0u) << dma::modeName(mode);
        EXPECT_EQ(r.nic.rx_dropped, 0u) << dma::modeName(mode);
    }
}

TEST(RrTest, RttOrderingAndMagnitude)
{
    RrParams p = rrParamsFor(nic::mlxProfile());
    p.measure_transactions = 1500;
    p.warmup_transactions = 200;
    const auto none =
        runNetperfRr(ProtectionMode::kNone, nic::mlxProfile(), p);
    const auto strict =
        runNetperfRr(ProtectionMode::kStrict, nic::mlxProfile(), p);
    const auto riommu =
        runNetperfRr(ProtectionMode::kRiommu, nic::mlxProfile(), p);
    const double rtt_none = 1e6 / none.transactions_per_sec;
    const double rtt_strict = 1e6 / strict.transactions_per_sec;
    const double rtt_riommu = 1e6 / riommu.transactions_per_sec;
    // Paper Table 3 (mlx): none 13.4, riommu 13.9, strict 17.3 us.
    EXPECT_NEAR(rtt_none, 13.4, 3.0);
    EXPECT_GT(rtt_strict, rtt_riommu);
    EXPECT_GT(rtt_riommu, rtt_none);
    EXPECT_LT(strict.cpu, 0.5) << "RR leaves the CPU mostly idle";
}

TEST(RequestLoadTest, ApacheOneKIsCpuBoundAndModeInsensitive)
{
    RequestLoadParams p = apacheParams(1024);
    p.measure_requests = 800;
    p.warmup_requests = 100;
    const auto none =
        runRequestLoad(ProtectionMode::kNone, nic::mlxProfile(), p);
    const auto riommu =
        runRequestLoad(ProtectionMode::kRiommu, nic::mlxProfile(), p);
    // Paper: ~12K requests/s, riommu within ~0.9x of none.
    EXPECT_NEAR(none.transactions_per_sec, 12000.0, 2500.0);
    EXPECT_GT(riommu.transactions_per_sec,
              0.8 * none.transactions_per_sec);
    EXPECT_GT(none.cpu, 0.9);
}

TEST(RequestLoadTest, ApacheOneMBehavesLikeStream)
{
    RequestLoadParams p = apacheParams(u64{1} << 20);
    p.measure_requests = 120;
    p.warmup_requests = 20;
    const auto strict =
        runRequestLoad(ProtectionMode::kStrict, nic::mlxProfile(), p);
    const auto riommu =
        runRequestLoad(ProtectionMode::kRiommu, nic::mlxProfile(), p);
    EXPECT_GT(riommu.throughput_gbps, 2.0 * strict.throughput_gbps)
        << "1MB responses are throughput-bound (paper: 5.8x)";
}

TEST(RequestLoadTest, MemcachedOrderOfMagnitudeAboveApache)
{
    RequestLoadParams apache = apacheParams(1024);
    apache.measure_requests = 600;
    apache.warmup_requests = 100;
    RequestLoadParams mc = memcachedParams();
    mc.measure_requests = 5000;
    mc.warmup_requests = 600;
    const auto a =
        runRequestLoad(ProtectionMode::kNone, nic::mlxProfile(), apache);
    const auto m =
        runRequestLoad(ProtectionMode::kNone, nic::mlxProfile(), mc);
    EXPECT_GT(m.transactions_per_sec, 6.0 * a.transactions_per_sec)
        << "paper: memcached is ~an order of magnitude above apache-1K";
}

TEST(RequestLoadTest, SetsAndGetsBothFlow)
{
    RequestLoadParams mc = memcachedParams();
    mc.measure_requests = 2000;
    mc.warmup_requests = 200;
    const auto r =
        runRequestLoad(ProtectionMode::kRiommu, nic::mlxProfile(), mc);
    EXPECT_EQ(r.nic.dma_faults, 0u);
    EXPECT_GT(r.transactions_per_sec, 0.0);
}

TEST(StorageTest, DeviceBoundIopsEqualAcrossModes)
{
    // Sec. 4 applicability: on a 20 us flash device the SSD is the
    // bottleneck, so protection costs CPU, not IOPS.
    workloads::StorageParams p;
    p.measure_ios = 4000;
    p.warmup_ios = 400;
    const auto strict = runStorage(ProtectionMode::kStrict, p);
    const auto riommu = runStorage(ProtectionMode::kRiommu, p);
    const auto none = runStorage(ProtectionMode::kNone, p);
    EXPECT_NEAR(strict.transactions_per_sec, none.transactions_per_sec,
                0.02 * none.transactions_per_sec);
    EXPECT_NEAR(riommu.transactions_per_sec, none.transactions_per_sec,
                0.02 * none.transactions_per_sec);
    EXPECT_GT(strict.cpu, riommu.cpu);
    EXPECT_GT(riommu.cpu, none.cpu);
}

TEST(StorageTest, ExtremeDeviceExposesStrictOverhead)
{
    workloads::StorageParams p;
    p.measure_ios = 6000;
    p.warmup_ios = 600;
    p.device.access_latency_ns = 1200;
    p.device.bandwidth_gbps = 60.0;
    p.device.irq_batch = 4;
    p.device.irq_delay_ns = 1000;
    const auto strict = runStorage(ProtectionMode::kStrict, p);
    const auto riommu = runStorage(ProtectionMode::kRiommu, p);
    EXPECT_GT(riommu.transactions_per_sec,
              1.2 * strict.transactions_per_sec)
        << "on a microsecond-class SSD, strict's per-I/O cycles cap IOPS";
}

/** Property sweep: on every (mode, profile), stream runs clean and
 * the safe modes never beat none. */
class StreamSweep
    : public ::testing::TestWithParam<std::tuple<ProtectionMode, bool>>
{
};

TEST_P(StreamSweep, CleanAndBoundedByNone)
{
    auto [mode, use_brcm] = GetParam();
    const nic::NicProfile &profile =
        use_brcm ? nic::brcmProfile() : nic::mlxProfile();
    StreamParams p = quickStream(profile);
    p.measure_packets = 3000;
    p.warmup_packets = 800;
    const auto r = runStream(mode, profile, p);
    const auto none = runStream(ProtectionMode::kNone, profile, p);
    EXPECT_EQ(r.nic.dma_faults, 0u);
    EXPECT_LE(r.throughput_gbps, none.throughput_gbps * 1.02)
        << "protection cannot make things faster";
    EXPECT_GT(r.throughput_gbps, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StreamSweep,
    ::testing::Combine(
        ::testing::Values(ProtectionMode::kStrict,
                          ProtectionMode::kStrictPlus,
                          ProtectionMode::kDefer,
                          ProtectionMode::kDeferPlus,
                          ProtectionMode::kRiommuNc,
                          ProtectionMode::kRiommu),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<ProtectionMode, bool>>
           &info) {
        std::string n = dma::modeName(std::get<0>(info.param));
        for (char &c : n) {
            if (c == '+')
                c = 'P';
            if (c == '-')
                c = 'M';
        }
        return n + (std::get<1>(info.param) ? "_brcm" : "_mlx");
    });

} // namespace
} // namespace rio::workloads
