/**
 * @file
 * Integration tests for the DMA layer across all protection modes:
 * functional map -> device access -> unmap round trips, the
 * protection-semantics matrix of DESIGN.md §5 (strict invalidation,
 * deferred stale window, page-granularity hole vs. fine-grained
 * rIOMMU), and cycle-charging sanity against Table 1.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cycles/cycle_account.h"
#include "dma/baseline_handle.h"
#include "dma/dma_context.h"

namespace rio::dma {
namespace {

using cycles::Cat;
using cycles::CycleAccount;
using iommu::Access;
using iommu::Bdf;
using iommu::DmaDir;

class DmaModeTest : public ::testing::TestWithParam<ProtectionMode>
{
  protected:
    DmaModeTest()
    {
        handle = ctx.makeHandle(GetParam(), bdf, &acct, {64, 64});
        buf = ctx.memory().allocContiguous(2 * kPageSize);
    }

    DmaContext ctx;
    CycleAccount acct;
    Bdf bdf{0, 3, 0};
    std::unique_ptr<DmaHandle> handle;
    PhysAddr buf = 0;
};

TEST_P(DmaModeTest, RoundTripThroughDeviceAddress)
{
    auto m = handle->map(0, buf + 10, 1000, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    const char msg[] = "dma payload";
    ASSERT_TRUE(
        handle->deviceWrite(m.value().device_addr, msg, sizeof(msg)).isOk());
    char in[sizeof(msg)] = {};
    ASSERT_TRUE(
        handle->deviceRead(m.value().device_addr, in, sizeof(in)).isOk());
    EXPECT_STREQ(in, msg);
    // Data must land at the intended physical location.
    char probe[sizeof(msg)] = {};
    ctx.memory().read(buf + 10, probe, sizeof(probe));
    EXPECT_STREQ(probe, msg);
    EXPECT_EQ(handle->liveMappings(), 1u);
    ASSERT_TRUE(handle->unmap(m.value(), true).isOk());
    EXPECT_EQ(handle->liveMappings(), 0u);
}

TEST_P(DmaModeTest, ManySequentialMappingsStayConsistent)
{
    for (int round = 0; round < 300; ++round) {
        auto m = handle->map(0, buf + (round % 7) * 64, 64, DmaDir::kBidir);
        ASSERT_TRUE(m.isOk()) << "round " << round;
        u64 cookie = 0x1000 + round;
        ASSERT_TRUE(
            handle->deviceWrite(m.value().device_addr, &cookie, 8).isOk());
        u64 back = 0;
        ASSERT_TRUE(
            handle->deviceRead(m.value().device_addr, &back, 8).isOk());
        EXPECT_EQ(back, cookie);
        ASSERT_TRUE(handle->unmap(m.value(), round % 16 == 15).isOk());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, DmaModeTest,
    ::testing::Values(ProtectionMode::kStrict, ProtectionMode::kStrictPlus,
                      ProtectionMode::kDefer, ProtectionMode::kDeferPlus,
                      ProtectionMode::kRiommuNc, ProtectionMode::kRiommu,
                      ProtectionMode::kNone,
                      ProtectionMode::kHwPassthrough,
                      ProtectionMode::kSwPassthrough),
    [](const ::testing::TestParamInfo<ProtectionMode> &info) {
        std::string n = modeName(info.param);
        for (char &c : n) {
            if (c == '+')
                c = 'P';
            if (c == '-')
                c = 'M';
        }
        return n;
    });

// ---- protection-semantics matrix ------------------------------------------

class ProtectionSemanticsTest : public ::testing::Test
{
  protected:
    DmaContext ctx;
    CycleAccount acct;
    Bdf bdf{0, 3, 0};
};

TEST_F(ProtectionSemanticsTest, StrictBlocksAccessImmediatelyAfterUnmap)
{
    auto handle = ctx.makeHandle(ProtectionMode::kStrict, bdf, &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 512, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    u64 v = 7;
    ASSERT_TRUE(handle->deviceWrite(m.value().device_addr, &v, 8).isOk());
    ASSERT_TRUE(handle->unmap(m.value(), true).isOk());
    EXPECT_FALSE(handle->deviceWrite(m.value().device_addr, &v, 8).isOk())
        << "strict mode invalidates synchronously";
}

TEST_F(ProtectionSemanticsTest, DeferLeavesStaleWindowUntilBatchFlush)
{
    auto handle = ctx.makeHandle(ProtectionMode::kDefer, bdf, &acct);
    auto *baseline = static_cast<BaselineDmaHandle *>(handle.get());
    const PhysAddr buf = ctx.memory().allocFrame();

    auto m = handle->map(0, buf, 512, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    u64 v = 7;
    // Device touches the buffer -> translation cached in the IOTLB.
    ASSERT_TRUE(handle->deviceWrite(m.value().device_addr, &v, 8).isOk());
    ASSERT_TRUE(handle->unmap(m.value(), true).isOk());

    // The deferred mode's documented vulnerability (§3.2): the stale
    // IOTLB entry still translates after unmap ...
    EXPECT_TRUE(handle->deviceWrite(m.value().device_addr, &v, 8).isOk());
    EXPECT_EQ(baseline->deferredPending(), 1u);

    // ... until 250 accumulated frees trigger the global flush.
    for (unsigned i = 0; i < BaselineDmaHandle::kDeferBatch - 1; ++i) {
        auto tmp = handle->map(0, buf, 64, DmaDir::kBidir);
        ASSERT_TRUE(tmp.isOk());
        ASSERT_TRUE(handle->unmap(tmp.value(), false).isOk());
    }
    EXPECT_EQ(baseline->deferredPending(), 0u) << "batch flushed";
    EXPECT_FALSE(handle->deviceWrite(m.value().device_addr, &v, 8).isOk())
        << "after the flush the stale entry is gone";
}

TEST_F(ProtectionSemanticsTest, BaselinePageGranularityHole)
{
    // Two sub-page buffers on one physical page. Unmapping the first
    // leaves the whole page reachable through the second's mapping —
    // the vulnerability the rIOMMU's byte-granular rPTEs close (§4).
    auto handle = ctx.makeHandle(ProtectionMode::kStrict, bdf, &acct);
    const PhysAddr page = ctx.memory().allocFrame();
    const PhysAddr buf1 = page;       // bytes 0..1023
    const PhysAddr buf2 = page + 1024; // bytes 1024..2047

    auto m1 = handle->map(0, buf1, 1024, DmaDir::kBidir);
    auto m2 = handle->map(0, buf2, 1024, DmaDir::kBidir);
    ASSERT_TRUE(m1.isOk());
    ASSERT_TRUE(m2.isOk());
    ASSERT_TRUE(handle->unmap(m1.value(), true).isOk());

    // The device can still reach buf1's bytes through m2's IOVA page.
    const u64 base_of_m2_page = m2.value().device_addr & ~kPageMask;
    u64 leak = 0xbad;
    EXPECT_TRUE(handle->deviceWrite(base_of_m2_page, &leak, 8).isOk())
        << "baseline IOMMU cannot protect sub-page neighbours";
    u64 probe = 0;
    ctx.memory().read(buf1, &probe, 8);
    EXPECT_EQ(probe, leak) << "the unmapped buffer was clobbered";
}

TEST_F(ProtectionSemanticsTest, RiommuClosesTheSubPageHole)
{
    auto handle =
        ctx.makeHandle(ProtectionMode::kRiommu, bdf, &acct, {64});
    const PhysAddr page = ctx.memory().allocFrame();
    auto m1 = handle->map(0, page, 1024, DmaDir::kBidir);
    auto m2 = handle->map(0, page + 1024, 1024, DmaDir::kBidir);
    ASSERT_TRUE(m1.isOk());
    ASSERT_TRUE(m2.isOk());
    ASSERT_TRUE(handle->unmap(m1.value(), true).isOk());

    // Through m2 the device sees exactly [page+1024, page+2048).
    u64 v = 1;
    EXPECT_TRUE(handle->deviceWrite(m2.value().device_addr, &v, 8).isOk());
    // m1's bytes are unreachable: m2's offsets are bounded by size,
    // and m1's own rIOVA is invalid.
    EXPECT_FALSE(
        handle->deviceWrite(m2.value().device_addr, &v, 1025).isOk());
    EXPECT_FALSE(handle->deviceWrite(m1.value().device_addr, &v, 8).isOk());
    u64 probe = 0xffff;
    ctx.memory().read(page, &probe, 8);
    EXPECT_EQ(probe, 0u) << "unmapped neighbour stayed untouched";
}

TEST_F(ProtectionSemanticsTest, RiommuMidBurstUnmapStaleWindowIsBounded)
{
    // Mid-burst, the rIOTLB entry for the ring may still describe an
    // unmapped rentry; the paper accepts this because the entry is
    // dropped at end-of-burst, bounding the window to the burst.
    auto handle =
        ctx.makeHandle(ProtectionMode::kRiommu, bdf, &acct, {64});
    const PhysAddr page = ctx.memory().allocFrame();
    auto m = handle->map(0, page, 64, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    u64 v = 7;
    ASSERT_TRUE(handle->deviceWrite(m.value().device_addr, &v, 8).isOk());
    ASSERT_TRUE(handle->unmap(m.value(), /*end_of_burst=*/true).isOk());
    EXPECT_FALSE(handle->deviceWrite(m.value().device_addr, &v, 8).isOk())
        << "after end-of-burst invalidation the access must fault";
}

TEST_F(ProtectionSemanticsTest, DirectionIsEnforcedEndToEnd)
{
    for (ProtectionMode mode :
         {ProtectionMode::kStrict, ProtectionMode::kRiommu}) {
        CycleAccount a;
        auto handle = ctx.makeHandle(mode, Bdf{0, 7, 0}, &a, {16});
        const PhysAddr buf = ctx.memory().allocFrame();
        auto tx = handle->map(0, buf, 128, DmaDir::kToDevice);
        ASSERT_TRUE(tx.isOk());
        u64 v = 0;
        EXPECT_TRUE(
            handle->deviceRead(tx.value().device_addr, &v, 8).isOk());
        EXPECT_FALSE(
            handle->deviceWrite(tx.value().device_addr, &v, 8).isOk())
            << modeName(mode) << ": transmit mapping must reject writes";
        ASSERT_TRUE(handle->unmap(tx.value(), true).isOk());
    }
}

TEST_F(ProtectionSemanticsTest, ErrantDmaToArbitraryMemoryIsBlocked)
{
    // The headline intra-OS protection property: a rogue device
    // cannot touch memory the OS never mapped for it.
    const PhysAddr secret = ctx.memory().allocFrame();
    u64 key = 0x5ec2e7;
    ctx.memory().write(secret, &key, 8);

    for (ProtectionMode mode :
         {ProtectionMode::kStrict, ProtectionMode::kStrictPlus,
          ProtectionMode::kRiommuNc, ProtectionMode::kRiommu}) {
        CycleAccount a;
        auto handle = ctx.makeHandle(mode, Bdf{0, 8, 0}, &a, {16});
        u64 stolen = 0;
        EXPECT_FALSE(handle->deviceRead(secret, &stolen, 8).isOk())
            << modeName(mode);
        EXPECT_FALSE(handle->deviceRead(
                         riommu::RIova::pack(0, 3, 0).raw, &stolen, 8)
                         .isOk())
            << modeName(mode) << ": unmapped ring entry";
        EXPECT_EQ(stolen, 0u);
    }

    // With the IOMMU off, the same DMA succeeds — the motivation.
    auto unsafe = ctx.makeHandle(ProtectionMode::kNone, Bdf{0, 9, 0}, &acct);
    u64 stolen = 0;
    EXPECT_TRUE(unsafe->deviceRead(secret, &stolen, 8).isOk());
    EXPECT_EQ(stolen, key);
}

// ---- charging sanity against Table 1 ---------------------------------------

TEST_F(ProtectionSemanticsTest, StrictUnmapPaysFullInvalidation)
{
    auto handle = ctx.makeHandle(ProtectionMode::kStrict, bdf, &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 512, DmaDir::kBidir);
    acct.reset();
    ASSERT_TRUE(handle->unmap(m.value(), true).isOk());
    EXPECT_EQ(acct.get(Cat::kUnmapIotlbInv),
              ctx.cost().iotlb_invalidate_entry);
}

TEST_F(ProtectionSemanticsTest, DeferUnmapPaysOnlyQueueing)
{
    auto handle = ctx.makeHandle(ProtectionMode::kDefer, bdf, &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 512, DmaDir::kBidir);
    acct.reset();
    ASSERT_TRUE(handle->unmap(m.value(), true).isOk());
    EXPECT_EQ(acct.get(Cat::kUnmapIotlbInv),
              ctx.cost().iotlb_invalidate_queued);
}

TEST_F(ProtectionSemanticsTest, NoneModeChargesNothing)
{
    auto handle = ctx.makeHandle(ProtectionMode::kNone, bdf, &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 512, DmaDir::kBidir);
    ASSERT_TRUE(handle->unmap(m.value(), true).isOk());
    EXPECT_EQ(acct.total(), 0u);
}

TEST_F(ProtectionSemanticsTest, PassthroughChargesOnlyAbstractionCost)
{
    for (ProtectionMode mode : {ProtectionMode::kHwPassthrough,
                                ProtectionMode::kSwPassthrough}) {
        CycleAccount a;
        auto handle = ctx.makeHandle(mode, Bdf{0, 10, 0}, &a);
        const PhysAddr buf = ctx.memory().allocFrame();
        auto m = handle->map(0, buf, 512, DmaDir::kBidir);
        ASSERT_TRUE(handle->unmap(m.value(), true).isOk());
        EXPECT_EQ(a.total(), 2 * ctx.cost().passthrough_call)
            << modeName(mode);
    }
}

TEST_F(ProtectionSemanticsTest, MultiPageBufferMapsAllPages)
{
    auto handle = ctx.makeHandle(ProtectionMode::kStrict, bdf, &acct);
    const PhysAddr buf = ctx.memory().allocContiguous(4 * kPageSize);
    // 3 pages + straddle = spans 4 pages.
    auto m = handle->map(0, buf + 100, 3 * kPageSize, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    std::vector<u8> data(3 * kPageSize, 0x3c);
    ASSERT_TRUE(handle
                    ->deviceWrite(m.value().device_addr, data.data(),
                                  data.size())
                    .isOk());
    std::vector<u8> back(data.size());
    ASSERT_TRUE(
        handle->deviceRead(m.value().device_addr, back.data(), back.size())
            .isOk());
    EXPECT_EQ(back, data);
    ASSERT_TRUE(handle->unmap(m.value(), true).isOk());
    EXPECT_FALSE(handle
                     ->deviceRead(m.value().device_addr + 2 * kPageSize,
                                  back.data(), 8)
                     .isOk());
}

} // namespace
} // namespace rio::dma
