/**
 * @file
 * Tests for the simulated core: charge-driven busy time, FIFO work
 * queueing, utilization accounting and virtualNow().
 */
#include <gtest/gtest.h>

#include "des/core.h"

namespace rio::des {
namespace {

using cycles::Cat;

class CoreTest : public ::testing::Test
{
  protected:
    Simulator sim;
    cycles::CostModel cost; // 3.1 GHz
    Core core{sim, cost};
};

TEST_F(CoreTest, ChargedCyclesBecomeBusyTime)
{
    core.post([&] { core.acct().charge(Cat::kProcessing, 3100); });
    sim.run();
    EXPECT_EQ(core.busyCycles(), 3100u);
    // 3100 cycles at 3.1 GHz == 1000 ns.
    EXPECT_EQ(core.freeAt(), 1000u);
    EXPECT_EQ(core.itemsRun(), 1u);
}

TEST_F(CoreTest, WorkItemsSerialize)
{
    Nanos second_started = 0;
    core.post([&] { core.acct().charge(Cat::kProcessing, 6200); });
    core.post([&] { second_started = sim.now(); });
    sim.run();
    EXPECT_EQ(second_started, 2000u)
        << "second item must wait for the first's 2000 ns";
}

TEST_F(CoreTest, ZeroCostWorkIsInstant)
{
    int runs = 0;
    for (int i = 0; i < 5; ++i)
        core.post([&] { ++runs; });
    sim.run();
    EXPECT_EQ(runs, 5);
    EXPECT_EQ(core.busyCycles(), 0u);
    EXPECT_EQ(sim.now(), 0u);
}

TEST_F(CoreTest, ItemsPostedFromItemsRunBackToBack)
{
    std::vector<Nanos> starts;
    core.post([&] {
        starts.push_back(sim.now());
        core.acct().charge(Cat::kProcessing, 310);
        core.post([&] {
            starts.push_back(sim.now());
            core.acct().charge(Cat::kProcessing, 310);
        });
    });
    sim.run();
    ASSERT_EQ(starts.size(), 2u);
    EXPECT_EQ(starts[0], 0u);
    EXPECT_EQ(starts[1], 100u);
}

TEST_F(CoreTest, UtilizationOverWindow)
{
    // 1000 ns of work in a 4000 ns window = 25%.
    core.post([&] { core.acct().charge(Cat::kProcessing, 3100); });
    sim.runUntil(4000);
    EXPECT_NEAR(core.utilization(0, 4000, 0), 0.25, 1e-9);
}

TEST_F(CoreTest, VirtualNowAdvancesWithinAnItem)
{
    Nanos vnow_mid = 0;
    Nanos vnow_start = 0;
    core.post([&] {
        vnow_start = core.virtualNow();
        core.acct().charge(Cat::kProcessing, 3100);
        vnow_mid = core.virtualNow();
    });
    sim.run();
    EXPECT_EQ(vnow_start, 0u);
    EXPECT_EQ(vnow_mid, 1000u)
        << "1000 ns of charged work must be visible mid-item";
    EXPECT_EQ(core.virtualNow(), sim.now())
        << "outside items, virtualNow == now";
}

TEST_F(CoreTest, InterruptBehindLongWorkIsDelayed)
{
    // Model: an interrupt posted at t=0 while a long app item runs.
    Nanos irq_ran_at = 0;
    core.post([&] { core.acct().charge(Cat::kProcessing, 31000); });
    core.post([&] { irq_ran_at = sim.now(); });
    sim.run();
    EXPECT_EQ(irq_ran_at, 10000u);
}

TEST_F(CoreTest, SpanIdsAreTrackDerivedAndCoreConfined)
{
    // Span ids come from the core's own counter under its track
    // identity — simulation content only, no shared atomic — so
    // trace capture stays reproducible across engine thread counts.
    core.setObsTrack(2, 1);
    EXPECT_EQ(core.nextSpanId(), (2u << 24) | (1u << 16) | 1u);
    EXPECT_EQ(core.nextSpanId(), (2u << 24) | (1u << 16) | 2u);

    Core other{sim, cost};
    other.setObsTrack(2, 3);
    EXPECT_EQ(other.nextSpanId(), (2u << 24) | (3u << 16) | 1u)
        << "sibling cores never collide and never share a counter";
}

} // namespace
} // namespace rio::des
