/**
 * @file
 * Tests for the generic descriptor ring.
 */
#include <gtest/gtest.h>

#include "ring/descriptor_ring.h"

namespace rio::ring {
namespace {

class RingTest : public ::testing::Test
{
  protected:
    mem::PhysicalMemory pm;
};

TEST_F(RingTest, DescriptorsLiveInPhysicalMemory)
{
    DescriptorRing ring(pm, 8);
    Descriptor d;
    d.addr = 0xabcd000;
    d.len = 1500;
    d.flags = Descriptor::kOwnedByDevice | Descriptor::kEndOfPacket;
    ring.write(3, d);

    // Read the raw bytes where the descriptor must live.
    const Descriptor raw =
        pm.readObject<Descriptor>(ring.base() + 3 * Descriptor::kBytes);
    EXPECT_EQ(raw.addr, d.addr);
    EXPECT_EQ(raw.len, d.len);
    EXPECT_TRUE(raw.ownedByDevice());
    EXPECT_TRUE(raw.endOfPacket());
    EXPECT_FALSE(raw.completed());
}

TEST_F(RingTest, PushPopMaintainsHeadTail)
{
    DescriptorRing ring(pm, 4);
    EXPECT_EQ(ring.spaceLeft(), 4u);
    EXPECT_EQ(ring.push(Descriptor{1, 0, 0}), 0u);
    EXPECT_EQ(ring.push(Descriptor{2, 0, 0}), 1u);
    EXPECT_EQ(ring.pending(), 2u);
    EXPECT_EQ(ring.spaceLeft(), 2u);
    EXPECT_EQ(ring.head(), 0u);
    EXPECT_EQ(ring.tail(), 2u);
    ring.pop();
    EXPECT_EQ(ring.head(), 1u);
    EXPECT_EQ(ring.pending(), 1u);
    EXPECT_EQ(ring.spaceLeft(), 3u);
}

TEST_F(RingTest, WrapsAroundManyLaps)
{
    DescriptorRing ring(pm, 4);
    for (u64 i = 0; i < 40; ++i) {
        const u32 idx = ring.push(Descriptor{i, 0, 0});
        EXPECT_EQ(idx, i % 4);
        ring.pop();
    }
    EXPECT_EQ(ring.pending(), 0u);
}

TEST_F(RingTest, FullRingHasNoSpace)
{
    DescriptorRing ring(pm, 2);
    ring.push(Descriptor{});
    ring.push(Descriptor{});
    EXPECT_EQ(ring.spaceLeft(), 0u);
}

TEST_F(RingTest, OffsetOfMatchesLayout)
{
    DescriptorRing ring(pm, 16);
    EXPECT_EQ(ring.offsetOf(0), 0u);
    EXPECT_EQ(ring.offsetOf(5), 5 * Descriptor::kBytes);
    EXPECT_EQ(ring.offsetOf(16), 0u) << "modular indexing";
}

TEST_F(RingTest, DestructorReleasesMemory)
{
    const u64 before = pm.allocatedFrames();
    {
        DescriptorRing ring(pm, 1024); // 16 KB = 4 frames
        EXPECT_EQ(pm.allocatedFrames(), before + 4);
    }
    EXPECT_EQ(pm.allocatedFrames(), before);
}

TEST_F(RingTest, DeathOnMisuse)
{
    DescriptorRing ring(pm, 2);
    EXPECT_DEATH(ring.pop(), "empty");
    ring.push(Descriptor{});
    ring.push(Descriptor{});
    EXPECT_DEATH(ring.push(Descriptor{}), "full");
    EXPECT_DEATH(ring.read(2), "out of range");
}

} // namespace
} // namespace rio::ring
