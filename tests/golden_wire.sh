#!/usr/bin/env bash
# Hostile-wire inertness + determinism regression for bench_wire_storm.
#
#   1. Disarmed wire is provably inert: `--loss 0` emits the
#      bench_cluster_rdma base rows, and every row must be
#      byte-identical to the checked-in cluster golden. A diff means
#      the fault model drew RNG, the reliability layer charged cycles,
#      or the port queue reordered mail while switched off.
#   2. The armed wire is deterministic: a lossy/congested storm point
#      must be byte-identical at --threads 1 and --threads 4 (modulo
#      the threads meta field) — drop/dup/delay draws, RTO timers and
#      QP-error recovery all replay identically on a worker pool.
#
# Usage: golden_wire.sh <bench_wire_storm> <cluster_golden.json>
set -euo pipefail

bench="$1"
golden="$2"
compat="$(mktemp)"
t1="$(mktemp)"
t4="$(mktemp)"
trap 'rm -f "$compat" "$t1" "$t4"' EXIT

rows() {
    grep -o '{"mode": "[^"]*", "variant": "base", "connections": 64[^}]*}' "$1"
}

RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 \
    "$bench" --loss 0 --quick --threads 1 --json "$compat" > /dev/null
if ! diff -u <(rows "$golden") <(rows "$compat"); then
    echo "golden_wire: disarmed wire is not inert (--loss 0 rows" \
         "diverged from $golden)" >&2
    exit 1
fi

RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 \
    "$bench" --loss 0.02 --quick --threads 1 --json "$t1" > /dev/null
RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 \
    "$bench" --loss 0.02 --quick --threads 4 --json "$t4" > /dev/null

strip_meta() {
    sed -e 's/"threads": [0-9]*/"threads": 0/' "$1"
}

if ! diff -u <(strip_meta "$t1") <(strip_meta "$t4"); then
    echo "golden_wire: storm at --threads 4 diverged from --threads 1" >&2
    exit 1
fi
echo "golden_wire: disarmed wire inert, armed storm thread-invariant"
