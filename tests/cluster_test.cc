/**
 * @file
 * sys::Cluster + rdma::RdmaNic integration suite — the scale-out
 * fabric's correctness contract:
 *   - remote writes/reads land exactly the bytes a local DMA oracle
 *     produces, translated through the *target* machine's IOMMU;
 *   - QP lifecycle (connect / traffic / teardown, plus slot
 *     exhaustion and force-quiesce) leaves no mapping, IOTLB or
 *     rIOTLB residue, audited with checkHandleLeaks in all 7 modes;
 *   - fleet runs are bit-for-bit identical across ParallelEngine
 *     thread counts (the golden_cluster ctest pins the same property
 *     on the bench's JSON);
 *   - the rDEVICE descriptor-fetch model and its hot tier count
 *     fetches consistently and default to off.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "dma/protection_mode.h"
#include "obs/slo.h"
#include "obs/timeline.h"
#include "rdma/rdma.h"
#include "sys/cluster.h"
#include "workloads/fleet.h"

namespace rio {
namespace {

using dma::ProtectionMode;

sys::ClusterConfig
smallConfig(ProtectionMode mode, unsigned machines = 2, u32 max_qps = 16)
{
    sys::ClusterConfig cfg;
    cfg.machines = machines;
    cfg.mode = mode;
    cfg.max_qps = max_qps;
    return cfg;
}

TEST(RdmaGeometry, RingSizesShape)
{
    const auto &p = rdma::rnicProfile();
    auto sizes = rdma::ringSizes(p, 3);
    ASSERT_EQ(sizes.size(), 7u); // CQ + 3 x (ctrl, data)
    EXPECT_EQ(sizes[0], 4u);
    for (u32 q = 0; q < 3; ++q) {
        EXPECT_EQ(sizes[rdma::ctrlRid(q)], 4u);
        EXPECT_EQ(sizes[rdma::dataRid(q)], 2 * p.sq_depth);
    }
}

TEST(Cluster, ConnectEstablishesBothEnds)
{
    sys::Cluster cluster(smallConfig(ProtectionMode::kRiommu));
    cluster.bringUp();
    bool connected = false;
    auto res = cluster.nic(0).connect(1, [&](u32, bool ok) {
        connected = ok;
    });
    ASSERT_TRUE(res.isOk());
    cluster.run();
    EXPECT_TRUE(connected);
    EXPECT_EQ(cluster.nic(0).establishedQps(), 1u);
    EXPECT_EQ(cluster.nic(1).establishedQps(), 1u);
    EXPECT_EQ(cluster.nic(0).peerNic(res.value()), 1u);
}

/** Remote write: target MR bytes must equal the source buffer —
 * compared against a local-DMA oracle (a direct deviceWrite of the
 * same bytes through the target's own handle). */
TEST(Cluster, RemoteWriteMatchesLocalDmaOracle)
{
    for (ProtectionMode mode :
         {ProtectionMode::kRiommu, ProtectionMode::kStrict,
          ProtectionMode::kNone}) {
        SCOPED_TRACE(dma::modeName(mode));
        sys::Cluster cluster(smallConfig(mode));
        cluster.bringUp();
        auto res = cluster.nic(0).connect(1, nullptr);
        ASSERT_TRUE(res.isOk());
        const u32 qp = res.value();
        cluster.run();

        const u32 len = 512;
        const u64 roff = 256;
        std::vector<u8> pattern(len);
        for (u32 i = 0; i < len; ++i)
            pattern[i] = static_cast<u8>(i * 7 + 3);
        cluster.machine(0).ctx().memory().write(
            cluster.nic(0).srcBuffer(qp), pattern.data(), len);

        bool completed = false, comp_ok = false;
        cluster.nic(0).setCompletionCallback(
            [&](u32, u32, bool ok) { completed = true; comp_ok = ok; });
        ASSERT_TRUE(cluster.nic(0).postWrite(qp, len, roff));
        cluster.run();
        ASSERT_TRUE(completed);
        ASSERT_TRUE(comp_ok);

        const u32 peer = cluster.nic(0).peerQp(qp);
        std::vector<u8> got(len);
        cluster.machine(1).ctx().memory().read(
            cluster.nic(1).mrBuffer(peer) + roff, got.data(), len);
        EXPECT_EQ(std::memcmp(got.data(), pattern.data(), len), 0);

        // Local-DMA oracle: the same bytes pushed through the
        // target's own handle at the same MR offset must agree.
        std::vector<u8> zeros(len, 0);
        cluster.machine(1).ctx().memory().write(
            cluster.nic(1).mrBuffer(peer) + roff, zeros.data(), len);
        std::vector<u8> after(len);
        ASSERT_TRUE(cluster.handle(1)
                        .deviceWrite(cluster.nic(1).mrDeviceAddr(peer) +
                                         roff,
                                     pattern.data(), len)
                        .isOk());
        cluster.machine(1).ctx().memory().read(
            cluster.nic(1).mrBuffer(peer) + roff, after.data(), len);
        EXPECT_EQ(std::memcmp(after.data(), pattern.data(), len), 0);

        cluster.quiesce();
        EXPECT_TRUE(cluster.checkLeaks(0).clean());
        EXPECT_TRUE(cluster.checkLeaks(1).clean());
    }
}

/** Remote read pulls the peer MR's bytes into the local read buffer. */
TEST(Cluster, RemoteReadMatchesPeerMemory)
{
    sys::Cluster cluster(smallConfig(ProtectionMode::kRiommuNc));
    cluster.bringUp();
    auto res = cluster.nic(0).connect(1, nullptr);
    ASSERT_TRUE(res.isOk());
    const u32 qp = res.value();
    cluster.run();

    const u32 len = 1024;
    const u32 peer = cluster.nic(0).peerQp(qp);
    std::vector<u8> pattern(len);
    for (u32 i = 0; i < len; ++i)
        pattern[i] = static_cast<u8>(0xA5 ^ (i * 13));
    cluster.machine(1).ctx().memory().write(
        cluster.nic(1).mrBuffer(peer), pattern.data(), len);

    bool ok = false;
    cluster.nic(0).setCompletionCallback(
        [&](u32, u32, bool good) { ok = good; });
    ASSERT_TRUE(cluster.nic(0).postRead(qp, len));
    cluster.run();
    ASSERT_TRUE(ok);

    std::vector<u8> got(len);
    cluster.machine(0).ctx().memory().read(
        cluster.nic(0).readBuffer(qp), got.data(), len);
    EXPECT_EQ(std::memcmp(got.data(), pattern.data(), len), 0);

    cluster.quiesce();
    EXPECT_TRUE(cluster.checkLeaks(0).clean());
    EXPECT_TRUE(cluster.checkLeaks(1).clean());
}

/** Orderly teardown releases both ends' slots and mappings. */
TEST(Cluster, TeardownFreesBothEnds)
{
    sys::Cluster cluster(smallConfig(ProtectionMode::kRiommu));
    cluster.bringUp();
    auto res = cluster.nic(0).connect(1, nullptr);
    ASSERT_TRUE(res.isOk());
    cluster.run();
    ASSERT_EQ(cluster.nic(1).establishedQps(), 1u);

    bool closed = false;
    ASSERT_TRUE(
        cluster.nic(0)
            .teardown(res.value(), [&](u32) { closed = true; })
            .isOk());
    cluster.run();
    EXPECT_TRUE(closed);
    EXPECT_EQ(cluster.nic(0).establishedQps(), 0u);
    EXPECT_EQ(cluster.nic(1).establishedQps(), 0u);
    EXPECT_EQ(cluster.total(&rdma::RdmaStats::teardowns), 2u);

    // Only the CQs remain mapped; after shutdown nothing does.
    cluster.nic(0).shutDown();
    cluster.nic(1).shutDown();
    EXPECT_EQ(cluster.handle(0).liveMappings(), 0u);
    EXPECT_EQ(cluster.handle(1).liveMappings(), 0u);
    EXPECT_TRUE(cluster.checkLeaks(0).clean());
    EXPECT_TRUE(cluster.checkLeaks(1).clean());
}

/** Slot exhaustion rejects cleanly (no leak, no wedge). */
TEST(Cluster, SlotExhaustionRejects)
{
    auto cfg = smallConfig(ProtectionMode::kDefer, 2, /*max_qps=*/2);
    sys::Cluster cluster(cfg);
    cluster.bringUp();
    int ok_count = 0, fail_count = 0;
    // 3 connects against 2 slots: the passive side runs out first
    // (it must hold our 2 plus its own capacity), or we do.
    for (int i = 0; i < 3; ++i) {
        auto res = cluster.nic(0).connect(1, [&](u32, bool ok) {
            (ok ? ok_count : fail_count)++;
        });
        if (!res.isOk())
            ++fail_count;
    }
    cluster.run();
    EXPECT_EQ(ok_count + fail_count, 3);
    EXPECT_GE(ok_count, 2);
    EXPECT_GE(fail_count, 1);
    cluster.quiesce();
    EXPECT_TRUE(cluster.checkLeaks(0).clean());
    EXPECT_TRUE(cluster.checkLeaks(1).clean());
}

/** The hostile-wire headline, pinned deterministically per mode: a
 * delayed duplicate of an already-acked write arrives after its QP
 * was torn down (rings unmapped). The protecting modes must stop it
 * at the target-side IOMMU — a FaultRecord, no memory write. The
 * defer modes instead expose their stale window: the revoked
 * translation is still cached until the batched flush, so the stray
 * lands; once the flush runs, a second copy faults like the rest.
 * Mode none has no fault machinery — the stray always lands. */
TEST(Cluster, LateArrivalAfterTeardown)
{
    for (ProtectionMode mode : dma::kEvaluatedModes) {
        SCOPED_TRACE(dma::modeName(mode));
        sys::ClusterConfig cfg = smallConfig(mode);
        cfg.reliability.enabled = true; // late detection needs PSN state
        sys::Cluster cluster(cfg);
        cluster.bringUp();
        auto res = cluster.nic(0).connect(1, nullptr);
        ASSERT_TRUE(res.isOk());
        const u32 qp = res.value();
        cluster.run();

        // A legit write first: it warms the target translation (the
        // defer window needs a cached IOTLB entry) and supplies the
        // PSN/rkey the wire duplicate will replay.
        const u32 len = 256;
        std::vector<u8> pattern(len);
        for (u32 i = 0; i < len; ++i)
            pattern[i] = static_cast<u8>(i ^ 0x5A);
        cluster.machine(0).ctx().memory().write(
            cluster.nic(0).srcBuffer(qp), pattern.data(), len);
        bool ok = false;
        cluster.nic(0).setCompletionCallback(
            [&](u32, u32, bool good) { ok = good; });
        ASSERT_TRUE(cluster.nic(0).postWrite(qp, len, 0));
        cluster.run();
        ASSERT_TRUE(ok);

        // Capture the packet's wire-visible identity before teardown
        // wipes the slot.
        const u32 peer = cluster.nic(0).peerQp(qp);
        const u64 stale_rkey = cluster.nic(1).mrDeviceAddr(peer);
        const PhysAddr mr_pa = cluster.nic(1).mrBuffer(peer);

        ASSERT_TRUE(cluster.nic(0).teardown(qp, nullptr).isOk());
        cluster.run();
        ASSERT_EQ(cluster.nic(1).establishedQps(), 0u);

        // Zero the old MR so a landing is unambiguous.
        std::vector<u8> zeros(len, 0);
        cluster.machine(1).ctx().memory().write(mr_pa, zeros.data(),
                                                len);

        auto strayWrite = [&](u8 fill) {
            rdma::WireMsg m;
            m.kind = rdma::MsgKind::kWrite;
            m.src_nic = 0;
            m.src_qp = qp;
            m.dst_qp = peer;
            m.wqe = 0;
            m.psn = 0; // the acked write's original sequence number
            m.rkey = stale_rkey;
            m.offset = 0;
            m.len = len;
            m.payload.assign(len, fill);
            return m;
        };
        auto faultRecords = [&] {
            return cluster.machine(1).ctx().iommu().faults().size() +
                   cluster.machine(1).ctx().riommu().faults().size();
        };

        const size_t faults_before = faultRecords();
        cluster.nic(1).fromWire(strayWrite(0xEE));
        cluster.run(); // drain the ack/nak back to the dead requester

        EXPECT_EQ(cluster.nic(1).stats().late_arrivals, 1u);
        std::vector<u8> got(len);
        cluster.machine(1).ctx().memory().read(mr_pa, got.data(), len);
        const std::vector<u8> landed(len, 0xEE);

        if (mode == ProtectionMode::kNone) {
            EXPECT_EQ(cluster.nic(1).stats().late_landed, 1u);
            EXPECT_EQ(cluster.nic(1).stats().late_faulted, 0u);
            EXPECT_EQ(got, landed); // nothing there to stop it
            EXPECT_EQ(faultRecords(), faults_before);
        } else if (mode == ProtectionMode::kDefer ||
                   mode == ProtectionMode::kDeferPlus) {
            // The stale window, caught red-handed: the PTE is gone
            // but the IOTLB entry survives until the batched flush.
            EXPECT_EQ(cluster.nic(1).stats().late_landed, 1u);
            EXPECT_EQ(got, landed);
            // Once the deferred flush finally runs, a second copy of
            // the same stray faults like the strict modes.
            cluster.machine(1).ctx().iommu().flushIotlb();
            cluster.nic(1).fromWire(strayWrite(0xDD));
            cluster.run();
            EXPECT_EQ(cluster.nic(1).stats().late_faulted, 1u);
            EXPECT_EQ(cluster.nic(1).stats().late_landed, 1u);
            cluster.machine(1).ctx().memory().read(mr_pa, got.data(),
                                                   len);
            EXPECT_EQ(got, landed); // 0xDD never hit memory
            EXPECT_GT(faultRecords(), faults_before);
        } else {
            // strict / strict+ / riommu- / riommu: no stale window.
            EXPECT_EQ(cluster.nic(1).stats().late_faulted, 1u);
            EXPECT_EQ(cluster.nic(1).stats().late_landed, 0u);
            EXPECT_EQ(got, zeros); // memory untouched
            EXPECT_GT(faultRecords(), faults_before);
        }

        cluster.quiesce();
        EXPECT_TRUE(cluster.checkLeaks(0).clean());
        EXPECT_TRUE(cluster.checkLeaks(1).clean());
    }
}

/** Fleet smoke across all 7 evaluated modes: traffic flows, no
 * errors, and the post-quiesce audit is clean everywhere. */
TEST(Fleet, SmokeAllModes)
{
    for (ProtectionMode mode : dma::kEvaluatedModes) {
        SCOPED_TRACE(dma::modeName(mode));
        workloads::FleetParams p;
        p.connections = 8;
        p.warmup_ops = 20;
        p.measure_ops = 100;
        sys::ClusterConfig cfg = smallConfig(mode, 2);
        cfg.max_qps = workloads::fleetMaxQps(p, cfg.machines);
        if (dma::modeUsesMagazineAllocator(mode))
            cfg.iova_cache_rounds = 16; // new depot layering in play
        sys::Cluster cluster(cfg);
        auto rep = runFleet(cluster, p);
        EXPECT_EQ(rep.measured_ops, 2 * p.measure_ops);
        EXPECT_GT(rep.cycles_per_op, 0.0);
        EXPECT_EQ(rep.comp_errors, 0u);
        EXPECT_EQ(rep.remote_faults, 0u);
        EXPECT_EQ(rep.local_fault_drops, 0u);
        EXPECT_TRUE(rep.leaks_clean);
        if (dma::modeUsesRiommu(mode)) {
            EXPECT_GT(rep.riotlb.lookups, 0u);
            EXPECT_GT(rep.eob_unmaps, 0u);
            EXPECT_GE(rep.avg_burst, 1.0);
        }
    }
}

std::string
fleetFingerprint(unsigned threads)
{
    workloads::FleetParams p;
    p.connections = 12;
    p.warmup_ops = 30;
    p.measure_ops = 150;
    p.incast_period_ops = 40;
    p.incast_burst = 4;
    p.churn_period_ops = 60;
    p.seed = 7;
    sys::ClusterConfig cfg;
    cfg.machines = 3;
    cfg.threads = threads;
    cfg.mode = ProtectionMode::kRiommu;
    cfg.max_qps = workloads::fleetMaxQps(p, cfg.machines);
    cfg.rdcache.model_fetch = true;
    cfg.rdcache.hot_entries = 64;
    sys::Cluster cluster(cfg);
    auto rep = runFleet(cluster, p);

    std::ostringstream os;
    os << rep.measured_ops << '/' << rep.measured_cycles << '/'
       << rep.total_ops << '/' << rep.posts << '/'
       << rep.posts_blocked << '/' << rep.connects << '/'
       << rep.teardowns << '/' << rep.eob_unmaps << '/'
       << rep.completions << '/' << rep.riotlb.lookups << '/'
       << rep.riotlb.walks << '/' << rep.riotlb.invalidations << '/'
       << rep.rdcache.fetches << '/' << rep.rdcache.hot_hits;
    for (unsigned m = 0; m < cluster.size(); ++m)
        os << '|' << cluster.machine(m).acct(0).total() << ':'
           << cluster.lane(m).sim().now() << ':'
           << cluster.lane(m).sim().eventsRun();
    return os.str();
}

/** The satellite determinism gate: --threads 1 and --threads 3 runs
 * are bit-for-bit identical, down to per-lane event counts. */
TEST(Fleet, ThreadCountInvariance)
{
    const std::string one = fleetFingerprint(1);
    const std::string three = fleetFingerprint(3);
    EXPECT_EQ(one, three);
}

/** The descriptor-fetch model defaults off and, when on, counts
 * consistently; the hot tier absorbs Zipf-hot rings. */
TEST(Fleet, RdCacheAblationCounts)
{
    workloads::FleetParams p;
    p.connections = 16;
    p.warmup_ops = 20;
    p.measure_ops = 150;

    sys::ClusterConfig off = smallConfig(ProtectionMode::kRiommu, 2);
    off.max_qps = workloads::fleetMaxQps(p, off.machines);
    sys::Cluster c_off(off);
    auto rep_off = runFleet(c_off, p);
    EXPECT_EQ(rep_off.rdcache.fetches, 0u);

    sys::ClusterConfig flat = off;
    flat.rdcache.model_fetch = true; // fetch model, no hot tier
    sys::Cluster c_flat(flat);
    auto rep_flat = runFleet(c_flat, p);
    EXPECT_GT(rep_flat.rdcache.fetches, 0u);
    EXPECT_EQ(rep_flat.rdcache.hot_hits, 0u);
    EXPECT_EQ(rep_flat.rdcache.hot_misses, rep_flat.rdcache.fetches);

    sys::ClusterConfig tier = off;
    tier.rdcache.model_fetch = true;
    tier.rdcache.hot_entries = 256;
    sys::Cluster c_tier(tier);
    auto rep_tier = runFleet(c_tier, p);
    EXPECT_EQ(rep_tier.rdcache.hot_hits + rep_tier.rdcache.hot_misses,
              rep_tier.rdcache.fetches);
    EXPECT_GT(rep_tier.rdcache.hot_hits, 0u);
    // The fetch model must not perturb driver-side cycles: it is a
    // hardware-walk effect, reported via counters.
    EXPECT_DOUBLE_EQ(rep_flat.cycles_per_op, rep_off.cycles_per_op);
    EXPECT_DOUBLE_EQ(rep_tier.cycles_per_op, rep_off.cycles_per_op);
}

/** Hostile-wire fleet shape shared by the tracing tests: enough loss
 * and churn that go-back-N replays, duplicate deliveries and QP
 * errors all occur, small enough to stay fast. */
workloads::FleetReport
runTracedStorm(unsigned threads)
{
    workloads::FleetParams p;
    p.connections = 8;
    p.warmup_ops = 10;
    p.measure_ops = 200;
    p.churn_period_ops = 25;
    p.churn_abort_fraction = 0.5;
    p.seed = 3;
    sys::ClusterConfig cfg;
    cfg.machines = 2;
    cfg.threads = threads;
    cfg.mode = ProtectionMode::kRiommu;
    cfg.wire.drop_rate = 0.05;
    cfg.wire.dup_rate = 0.15;
    cfg.wire.delay_rate = 0.5;
    cfg.wire.delay_max_ns = 60000;
    cfg.reliability.enabled = true;
    cfg.max_qps = workloads::fleetMaxQps(p, cfg.machines);
    sys::Cluster cluster(cfg);
    return runFleet(cluster, p);
}

/**
 * Span identity under the hostile wire: duplicate deliveries and
 * go-back-N replays must re-attach to the ORIGINAL op's trace id —
 * never mint a fresh one — and every trace closes with exactly one
 * terminal CQE span. This is the invariant that makes a stitched
 * cross-machine span tree readable: retransmit episodes show up as
 * child instants on the op that suffered them.
 */
TEST(Tracing, SpanIdentityUnderHostileWire)
{
    if (!obs::kObsCompiled)
        GTEST_SKIP() << "observability compiled out (RIO_OBS=OFF)";
    obs::timeline().clear();
    obs::timeline().setCapacity(1u << 20); // retain every event
    obs::timeline().setRecording(true);
    const auto rep = runTracedStorm(1);
    obs::timeline().setRecording(false);
    ASSERT_GT(rep.retransmits, 0u) << "storm must actually replay";
    ASSERT_GT(rep.wire_dups, 0u) << "storm must actually duplicate";

    std::map<u64, u64> posts, cqes;
    u64 rtx_on_known_trace = 0, orphan_children = 0, cqe_events = 0;
    for (const auto &[key, events] : obs::timeline().tracks()) {
        (void)key;
        for (const obs::Event &e : events) {
            if (e.kind == obs::Ev::kOpPost)
                ++posts[e.trace];
            else if (e.kind == obs::Ev::kOpCqe) {
                ++cqes[e.trace];
                ++cqe_events;
            }
        }
    }
    for (const auto &[key, events] : obs::timeline().tracks()) {
        (void)key;
        for (const obs::Event &e : events) {
            if (e.kind == obs::Ev::kRetransmit) {
                // A replay episode rides the original op's trace.
                ASSERT_NE(e.trace, 0u);
                if (posts.count(e.trace))
                    ++rtx_on_known_trace;
            } else if (e.kind == obs::Ev::kWireTx ||
                       e.kind == obs::Ev::kIngressQ) {
                if (!posts.count(e.trace))
                    ++orphan_children;
            }
        }
    }
    EXPECT_GT(posts.size(), 0u);
    for (const auto &[trace, n] : posts) {
        EXPECT_NE(trace, 0u) << "every post allocates a trace";
        EXPECT_EQ(n, 1u) << "trace ids are never reused across posts";
    }
    for (const auto &[trace, n] : cqes) {
        EXPECT_EQ(n, 1u)
            << "replays and duplicates must not double-complete trace 0x"
            << std::hex << trace;
        EXPECT_TRUE(posts.count(trace))
            << "a CQE span without its post span";
    }
    EXPECT_EQ(cqe_events, rep.completions)
        << "exactly one terminal CQE span per completed op";
    EXPECT_GT(rtx_on_known_trace, 0u)
        << "at least one retransmit child attached to a live op span";
    EXPECT_EQ(orphan_children, 0u)
        << "wire/ingress spans must all belong to a posted op";
    obs::timeline().clear();
}

std::string
timelineFingerprint(unsigned threads)
{
    obs::timeline().clear();
    obs::timeline().setCapacity(1u << 20);
    obs::timeline().setRecording(true);
    runTracedStorm(threads);
    obs::timeline().setRecording(false);
    std::ostringstream os;
    for (const auto &[key, events] : obs::timeline().tracks()) {
        os << "track " << key << "\n";
        for (const obs::Event &e : events) {
            // Flight-dump markers carry the process-wide dump ordinal
            // in arg — a host-side sequence that depends on which lane
            // reaches its QP error first in wall-clock time. Every
            // simulated event (including the marker's virtual time and
            // trace) is thread-invariant; the ordinal alone is not.
            if (e.kind == obs::Ev::kFlightDump)
                continue;
            os << static_cast<int>(e.kind) << ' ' << e.t << ' '
               << e.pid << ':' << e.tid << ' ' << e.bdf << '/' << e.rid
               << ' ' << e.arg << ' ' << e.arg2 << ' ' << e.dur_ns
               << ' ' << e.id << " 0x" << std::hex << e.trace
               << std::dec << '\n';
        }
    }
    obs::timeline().clear();
    return os.str();
}

/** The tentpole determinism gate: with tracing fully on, the entire
 * event timeline — ids, traces, timestamps, order — is byte-identical
 * between --threads 1 and --threads 4. Trace ids come from
 * lane-confined counters, never a shared atomic. */
TEST(Tracing, TimelineByteIdenticalAcrossThreadCounts)
{
    if (!obs::kObsCompiled)
        GTEST_SKIP() << "observability compiled out (RIO_OBS=OFF)";
    const std::string one = timelineFingerprint(1);
    const std::string four = timelineFingerprint(4);
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, four);
}

/** Exact SLO records cover every completion, merge deterministically
 * across machines, and attribute the tail to a real category. */
TEST(Tracing, SloReportCoversEveryCompletion)
{
    obs::setSloRecording(true);
    const auto rep = runTracedStorm(1);
    obs::setSloRecording(false);
    ASSERT_TRUE(rep.slo_valid);
    EXPECT_EQ(rep.slo.dropped, 0u);
    EXPECT_EQ(rep.slo.count, rep.completions);
    EXPECT_GT(rep.slo.p99, rep.slo.p50);
    EXPECT_GE(rep.slo.p999, rep.slo.p99);
    EXPECT_GE(rep.slo.max, rep.slo.p999);
    EXPECT_GT(rep.slo.tail_ops, 0u);
    EXPECT_GT(rep.slo.top_cat_share, 0.0);
    u64 total_cycles = 0;
    for (u64 c : rep.slo.all_cat_cycles)
        total_cycles += c;
    EXPECT_GT(total_cycles, 0u) << "per-Cat attribution present";
}

/** Fault injection surfaces as NAKs/local drops, never wedges the
 * closed loop, and still quiesces leak-free. */
TEST(Fleet, FaultInjectionDrainsClean)
{
    workloads::FleetParams p;
    p.connections = 8;
    p.warmup_ops = 10;
    p.measure_ops = 80;
    sys::ClusterConfig cfg = smallConfig(ProtectionMode::kRiommu, 2);
    cfg.max_qps = workloads::fleetMaxQps(p, cfg.machines);
    cfg.fault_rate = 0.02;
    cfg.fault_seed = 11;
    sys::Cluster cluster(cfg);
    auto rep = runFleet(cluster, p);
    EXPECT_EQ(rep.measured_ops, 2 * p.measure_ops);
    EXPECT_TRUE(rep.leaks_clean);
}

} // namespace
} // namespace rio
