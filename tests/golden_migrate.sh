#!/usr/bin/env bash
# Live-migration inertness + determinism regression for bench_migration.
#
#   1. The migration subsystem is provably inert when off: `--loss 0`
#      runs the bench_cluster_rdma base recipe on a migration-DISABLED
#      cluster, and every row must be byte-identical to the checked-in
#      cluster golden. A diff means the overlay NICs charged cycles,
#      drew RNG, or perturbed lane scheduling while switched off.
#   2. The armed engine is deterministic: the full migration sweep
#      (pre-copy over a lossy wire, blackout, stray ledger) must be
#      byte-identical at --threads 1 and --threads 4 (modulo the
#      threads meta field) — dirtier draws, stream retransmits and
#      per-platform state replay all commute with the worker pool.
#
# Usage: golden_migrate.sh <bench_migration> <cluster_golden.json>
set -euo pipefail

bench="$1"
golden="$2"
compat="$(mktemp)"
t1="$(mktemp)"
t4="$(mktemp)"
trap 'rm -f "$compat" "$t1" "$t4"' EXIT

rows() {
    grep -o '{"mode": "[^"]*", "variant": "base", "connections": 64[^}]*}' "$1"
}

RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 \
    "$bench" --loss 0 --quick --threads 1 --json "$compat" > /dev/null
if ! diff -u <(rows "$golden") <(rows "$compat"); then
    echo "golden_migrate: disabled migration overlay is not inert" \
         "(--loss 0 rows diverged from $golden)" >&2
    exit 1
fi

RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 \
    "$bench" --quick --threads 1 --json "$t1" > /dev/null
RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 \
    "$bench" --quick --threads 4 --json "$t4" > /dev/null

strip_meta() {
    sed -e 's/"threads": [0-9]*/"threads": 0/' "$1"
}

if ! diff -u <(strip_meta "$t1") <(strip_meta "$t4"); then
    echo "golden_migrate: migration sweep at --threads 4 diverged" \
         "from --threads 1" >&2
    exit 1
fi
echo "golden_migrate: disabled overlay inert, armed sweep thread-invariant"
