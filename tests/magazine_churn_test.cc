/**
 * @file
 * MagazineIovaAllocator under multi-core lifecycle churn (the
 * allocator behind strict+ and defer+). The magazine mechanism parks
 * freed ranges instead of releasing them, so the failure mode worth
 * guarding is a range leaking *around* the magazines during a surprise
 * unplug: parked-but-live, or live-but-unparked after the driver's
 * removal cleanup. The tests drive two cores mapping and unmapping
 * through two NICs while one of them is yanked and replugged, then
 * audit the handles with checkHandleLeaks and the tree with
 * validate(), and pin the whole scenario — churn included — to
 * bit-identical replay, mirroring spinlock_test's determinism
 * structure.
 */
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "des/parallel.h"
#include "dma/baseline_handle.h"
#include "dma/dma_context.h"
#include "iova/magazine_allocator.h"
#include "nic/profile.h"
#include "sys/machine.h"
#include "workloads/scaling.h"

namespace rio {
namespace {

using dma::ProtectionMode;
using iommu::DmaDir;
using cycles::Cat;

nic::NicProfile
testProfile()
{
    nic::NicProfile p;
    p.name = "test";
    p.tx_buffers_per_packet = 1;
    p.rx_rings = 1;
    p.rx_ring_entries = 16;
    p.tx_ring_entries = 512;
    p.tx_completion_batch = 16;
    p.tx_irq_delay_ns = 5000;
    p.rx_irq_delay_ns = 1000;
    return p;
}

iova::MagazineIovaAllocator &
magazineOf(dma::DmaHandle &h)
{
    auto &bh = dynamic_cast<dma::BaselineDmaHandle &>(h);
    auto *mag =
        dynamic_cast<iova::MagazineIovaAllocator *>(&bh.allocator());
    EXPECT_NE(mag, nullptr);
    return *mag;
}

/** End-of-round allocator/account state, for determinism checks. */
struct ChurnOutcome
{
    u64 acct0 = 0, acct1 = 0;
    u64 alloc_calls = 0, magazine_hits = 0;
    u64 tree_size = 0, parked = 0, live = 0;
    u64 unplugs = 0, replugs = 0;

    bool
    operator==(const ChurnOutcome &o) const
    {
        return acct0 == o.acct0 && acct1 == o.acct1 &&
               alloc_calls == o.alloc_calls &&
               magazine_hits == o.magazine_hits &&
               tree_size == o.tree_size && parked == o.parked &&
               live == o.live && unplugs == o.unplugs &&
               replugs == o.replugs;
    }
};

/**
 * The shared scenario: two cores, one NIC each, mixed-size map/unmap
 * bursts on both, with NIC 1 surprise-unplugged mid-burst (its live
 * mappings recovered by the driver removal path, not by us), then
 * replugged and driven again. Stepped — postRound() arms one round,
 * the caller drives the simulator (directly, or via an engine lane),
 * auditRound() checks invariants, finish() quiesces and returns the
 * end state — so the same scenario runs on a plain Simulator or on a
 * des::ParallelEngine lane next to other scenarios.
 */
class ChurnScenario
{
  public:
    static constexpr int kRounds = 14;

    ChurnScenario(ProtectionMode mode, des::Simulator &sim)
        : m_(sim, mode, /*ncores=*/2)
    {
        m_.attachNic(testProfile(), 0);
        m_.attachNic(testProfile(), 1);
        m_.bringUp();
    }

    void
    postRound(int round)
    {
        m_.core(0).post([this] { burst(0, true); });
        if (round == 2) {
            // Map on core 1, then the device vanishes with the burst
            // live. The NIC's removal path recovers its own orphans;
            // this driver unmaps its burst through the detached
            // handle — the strict+ path that eats invalidation
            // time-outs — and the magazines must still repark every
            // range.
            m_.core(1).post([this] {
                const auto orphans = burst(1, false);
                m_.surpriseUnplugNic(1);
                m_.removeCleanupNic(1);
                unmapBurst(1, orphans);
            });
        } else if (round == 3) {
            m_.core(1).post(
                [this] { ASSERT_TRUE(m_.replugNic(1).isOk()); });
        } else {
            m_.core(1).post([this] { burst(1, true); });
        }
    }

    void
    auditRound(int round)
    {
        // The leak audit is only meaningful on a detached handle (a
        // live NIC rightfully holds its Rx-prefill and descriptor
        // mappings): audit NIC 1 right after the removal cleanup.
        if (round == 2) {
            const dma::LeakReport rep =
                m_.ctx().checkHandleLeaks(m_.handle(1));
            EXPECT_TRUE(rep.clean())
                << "post-unplug cleanup: " << rep.toString();
        }
        for (unsigned nic = 0; nic < 2; ++nic)
            EXPECT_TRUE(magazineOf(m_.handle(nic)).validate())
                << "round " << round << " nic " << nic;
    }

    ChurnOutcome
    finish()
    {
        // Orderly end of life: everything returned, nothing parked-
        // but-live, the trees still valid red-black trees.
        EXPECT_TRUE(m_.quiesceNic(0).isOk());
        EXPECT_TRUE(m_.quiesceNic(1).isOk());
        for (unsigned nic = 0; nic < 2; ++nic) {
            const dma::LeakReport rep =
                m_.ctx().checkHandleLeaks(m_.handle(nic));
            EXPECT_TRUE(rep.clean())
                << "after quiesce, nic " << nic << ": "
                << rep.toString();
        }

        ChurnOutcome out;
        iova::MagazineIovaAllocator &mag0 = magazineOf(m_.handle(0));
        EXPECT_EQ(mag0.live(), 0u);
        EXPECT_EQ(mag0.parked(), mag0.treeSize());
        EXPECT_TRUE(mag0.validate());
        EXPECT_GT(mag0.magazineHits(), 0u); // steady state reached
        iova::MagazineIovaAllocator &mag1 = magazineOf(m_.handle(1));
        EXPECT_EQ(mag1.live(), 0u);
        EXPECT_TRUE(mag1.validate());

        out.acct0 = m_.acct(0).total();
        out.acct1 = m_.acct(1).total();
        out.alloc_calls = mag0.allocCalls() + mag1.allocCalls();
        out.magazine_hits = mag0.magazineHits() + mag1.magazineHits();
        out.tree_size = mag0.treeSize() + mag1.treeSize();
        out.parked = mag0.parked() + mag1.parked();
        out.live = mag0.live() + mag1.live();
        out.unplugs = m_.lifecycleStats().surprise_unplugs;
        out.replugs = m_.lifecycleStats().replugs;
        return out;
    }

  private:
    // Mixed sizes: 1 page and 2 pages, so two magazines are in play.
    // The volume matters for defer+: IOVA frees sit in the deferred
    // batch until the 250-unmap flush, so the run must cross that
    // threshold mid-flight for the magazines to see any traffic
    // before the final quiesce.
    std::vector<dma::DmaMapping>
    mapBurst(unsigned nic)
    {
        std::vector<dma::DmaMapping> mappings;
        for (int j = 0; j < 24; ++j) {
            const u32 size = (j % 2) ? 1000u : 1000u + kPageSize;
            const PhysAddr buf = m_.ctx().memory().allocFrame();
            auto mapping =
                m_.handle(nic).map(0, buf, size, DmaDir::kBidir);
            if (!mapping.isOk()) {
                // Mid-outage: the handle is detached; tolerated.
                EXPECT_EQ(mapping.status().code(), ErrorCode::kDetached);
                continue;
            }
            mappings.push_back(mapping.value());
        }
        return mappings;
    }

    // Mixed teardown order exercises find() on both magazines.
    void
    unmapBurst(unsigned nic, const std::vector<dma::DmaMapping> &mappings)
    {
        for (size_t j = 0; j < mappings.size(); j += 2)
            EXPECT_TRUE(
                m_.handle(nic).unmap(mappings[j], false).isOk());
        for (size_t j = 1; j < mappings.size(); j += 2)
            EXPECT_TRUE(m_.handle(nic)
                            .unmap(mappings[j],
                                   j + 2 > mappings.size())
                            .isOk());
    }

    std::vector<dma::DmaMapping>
    burst(unsigned nic, bool unmap_back)
    {
        const auto mappings = mapBurst(nic);
        if (unmap_back)
            unmapBurst(nic, mappings);
        return mappings;
    }

    sys::Machine m_;
};

ChurnOutcome
runChurnScenario(ProtectionMode mode)
{
    des::Simulator sim;
    ChurnScenario s(mode, sim);
    for (int round = 0; round < ChurnScenario::kRounds; ++round) {
        s.postRound(round);
        sim.run();
        s.auditRound(round);
    }
    return s.finish();
}

/** Both magazine modes side by side, one engine lane each: the same
 * round structure, but the rounds of the two scenarios execute
 * concurrently when the engine has workers. */
std::pair<ChurnOutcome, ChurnOutcome>
runChurnPairOnEngine(unsigned threads)
{
    des::ParallelEngine eng(threads);
    des::Lane &l0 = eng.addLane();
    des::Lane &l1 = eng.addLane();
    ChurnScenario s0(ProtectionMode::kStrictPlus, l0.sim());
    ChurnScenario s1(ProtectionMode::kDeferPlus, l1.sim());
    for (int round = 0; round < ChurnScenario::kRounds; ++round) {
        s0.postRound(round);
        s1.postRound(round);
        eng.run();
        s0.auditRound(round);
        s1.auditRound(round);
    }
    return {s0.finish(), s1.finish()};
}

class MagazineChurnTest : public ::testing::TestWithParam<ProtectionMode>
{
};

TEST_P(MagazineChurnTest, MultiCoreChurnLeaksNothing)
{
    const ChurnOutcome out = runChurnScenario(GetParam());
    EXPECT_EQ(out.live, 0u);
    EXPECT_EQ(out.unplugs, 1u);
    EXPECT_EQ(out.replugs, 1u);
    // The magazines did their job: most allocations after warmup are
    // magazine pops, and every parked range is still tree-resident.
    EXPECT_GT(out.magazine_hits, 0u);
    EXPECT_EQ(out.parked, out.tree_size);
}

TEST_P(MagazineChurnTest, ChurnScenarioReplaysBitForBit)
{
    const ChurnOutcome a = runChurnScenario(GetParam());
    const ChurnOutcome b = runChurnScenario(GetParam());
    EXPECT_TRUE(a == b);
}

INSTANTIATE_TEST_SUITE_P(MagazineModes, MagazineChurnTest,
                         ::testing::Values(ProtectionMode::kStrictPlus,
                                           ProtectionMode::kDeferPlus),
                         [](const auto &info) {
                             return info.param ==
                                            ProtectionMode::kStrictPlus
                                        ? std::string("strictPlus")
                                        : std::string("deferPlus");
                         });

// ---- engine lanes: the pair under worker threads, bit-identical -------------

TEST(MagazineChurnParallel, EnginePairMatchesSequentialBitForBit)
{
    const auto seq = runChurnPairOnEngine(1);
    const auto par = runChurnPairOnEngine(2);
    EXPECT_TRUE(seq.first == par.first) << "strict+ diverged at 2 threads";
    EXPECT_TRUE(seq.second == par.second) << "defer+ diverged at 2 threads";
    // And a lane replays the plain-Simulator scenario exactly.
    EXPECT_TRUE(seq.first ==
                runChurnScenario(ProtectionMode::kStrictPlus));
    EXPECT_TRUE(seq.second ==
                runChurnScenario(ProtectionMode::kDeferPlus));
}

// ---- workload-level: Poisson churn + contended cores, deterministic ---------

TEST(MagazineScalingChurn, TwoCorePoissonChurnIsDeterministic)
{
    workloads::StreamParams p =
        workloads::streamParamsFor(nic::mlxProfile());
    p.measure_packets = 1500;
    p.warmup_packets = 300;
    p.churn_per_ms = 0.3;
    p.churn_seed = 5;

    for (ProtectionMode mode :
         {ProtectionMode::kStrictPlus, ProtectionMode::kDeferPlus}) {
        const auto r1 = workloads::runStreamScaling(
            mode, nic::mlxProfile(), 2, p);
        const auto r2 = workloads::runStreamScaling(
            mode, nic::mlxProfile(), 2, p);
        EXPECT_EQ(r1.tx_packets, r2.tx_packets)
            << dma::modeName(mode);
        EXPECT_EQ(r1.cycles_per_packet, r2.cycles_per_packet)
            << dma::modeName(mode);
        EXPECT_EQ(r1.lock_wait_per_packet, r2.lock_wait_per_packet)
            << dma::modeName(mode);
        EXPECT_EQ(r1.iova_lock.wait_cycles, r2.iova_lock.wait_cycles)
            << dma::modeName(mode);
    }
}

} // namespace
} // namespace rio
