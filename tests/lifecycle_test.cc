/**
 * @file
 * Device lifecycle robustness tests: the orderly quiesce protocol
 * (stop posting → drain → unmap all → flush → detach) across every
 * protection mode, surprise hot-unplug at every ring index of a
 * 256-entry burst with zero leaked mappings, the use-after-detach
 * guard, the stale-mapping leak detector, invalidation-queue
 * time-out recovery (VT-d ITE analog) with other devices' queued
 * invalidations surviving, the context-cache detach regression, and
 * churn composing with fault injection.
 */
#include <gtest/gtest.h>

#include "dma/dma_context.h"
#include "iommu/inval_queue.h"
#include "nvme/nvme.h"
#include "ahci/ahci.h"
#include "sys/machine.h"
#include "workloads/stream.h"

namespace rio {
namespace {

using dma::ProtectionMode;
using iommu::Access;
using iommu::Bdf;
using iommu::DmaDir;
using iommu::FaultReason;
using cycles::Cat;

nic::NicProfile
testProfile()
{
    nic::NicProfile p; // small rings, 1 buffer/packet for fast tests
    p.name = "test";
    p.tx_buffers_per_packet = 1;
    p.rx_rings = 1;
    p.rx_ring_entries = 16;
    p.tx_ring_entries = 512; // room for a full 256-entry burst
    p.tx_completion_batch = 16;
    p.tx_irq_delay_ns = 5000;
    p.rx_irq_delay_ns = 1000;
    return p;
}

net::Packet
mappedPacket()
{
    net::Packet pkt;
    pkt.payload_bytes = 1000; // above the inline threshold: maps
    return pkt;
}

class LifecycleModeTest : public ::testing::TestWithParam<ProtectionMode>
{
};

// ---- orderly quiesce --------------------------------------------------------

TEST_P(LifecycleModeTest, QuiesceProtocolOrderAndNoLeaks)
{
    des::Simulator sim;
    sys::Machine m(sim, GetParam(), testProfile());
    m.bringUp();
    m.core().post([&] {
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(m.nic().sendPacket(mappedPacket()).isOk());
    });
    sim.run();

    ASSERT_TRUE(m.quiesceNic(0).isOk());

    // The journal records the protocol phases, in protocol order.
    const auto &log = m.lifecycleLog();
    ASSERT_EQ(log.size(), 5u);
    EXPECT_EQ(log[0].phase, sys::LifecyclePhase::kStopPosting);
    EXPECT_EQ(log[1].phase, sys::LifecyclePhase::kDrain);
    EXPECT_EQ(log[2].phase, sys::LifecyclePhase::kUnmapAll);
    EXPECT_EQ(log[3].phase, sys::LifecyclePhase::kFlush);
    EXPECT_EQ(log[4].phase, sys::LifecyclePhase::kDetach);
    EXPECT_EQ(m.lifecycleStats().quiesces, 1u);

    EXPECT_TRUE(m.handle().detached());
    EXPECT_EQ(m.handle().liveMappings(), 0u);
    const dma::LeakReport rep = m.ctx().checkHandleLeaks(m.handle());
    EXPECT_TRUE(rep.clean()) << rep.toString();
}

// ---- surprise unplug at every ring index ------------------------------------

TEST_P(LifecycleModeTest, UnplugAtEveryRingIndexLeaksNothing)
{
    des::Simulator sim;
    sys::Machine m(sim, GetParam(), testProfile());
    m.bringUp();

    for (unsigned k = 0; k < 256; ++k) {
        // Burst of k mapped sends, then the device vanishes mid-burst
        // (scheduled device events die; nothing was drained).
        m.core().post([&, k] {
            for (unsigned j = 0; j < k; ++j)
                ASSERT_TRUE(m.nic().sendPacket(mappedPacket()).isOk());
            m.surpriseUnplugNic(0);
            m.removeCleanupNic(0);
        });
        sim.run();

        const dma::LeakReport rep = m.ctx().checkHandleLeaks(m.handle());
        EXPECT_TRUE(rep.clean())
            << "unplug at ring index " << k << ": " << rep.toString();
        EXPECT_EQ(m.nic().liveMappings(), 0u) << "ring index " << k;

        // Exactly one typed use-after-detach record per post-unplug
        // DMA attempt.
        const u64 before = m.handle().detachFaults().size();
        u64 v = 0;
        Status s = m.handle().deviceRead(0x1000, &v, 8);
        EXPECT_EQ(s.code(), ErrorCode::kDetached);
        s = m.handle().deviceWrite(0x2000, &v, 8);
        EXPECT_EQ(s.code(), ErrorCode::kDetached);
        ASSERT_EQ(m.handle().detachFaults().size(), before + 2);
        const iommu::FaultRecord &rec = m.handle().detachFaults().back();
        EXPECT_EQ(rec.reason, FaultReason::kDetached);
        EXPECT_EQ(rec.bdf.pack(), m.handle().bdf().pack());
        m.handle().clearDetachFaults();

        m.core().post([&] {
            Status rs = m.replugNic(0);
            ASSERT_TRUE(rs.isOk()) << rs.toString();
        });
        sim.run();
        ASSERT_TRUE(m.nic().isUp());
        ASSERT_FALSE(m.handle().detached());
    }
    EXPECT_EQ(m.lifecycleStats().surprise_unplugs, 256u);
    EXPECT_EQ(m.lifecycleStats().replugs, 256u);
}

TEST_P(LifecycleModeTest, ReplugRestoresService)
{
    des::Simulator sim;
    sys::Machine m(sim, GetParam(), testProfile());
    m.bringUp();
    u64 on_wire = 0;
    m.nic().setWireTxCallback([&](const net::Packet &) { ++on_wire; });

    m.core().post([&] {
        for (int i = 0; i < 10; ++i)
            ASSERT_TRUE(m.nic().sendPacket(mappedPacket()).isOk());
    });
    sim.run();
    EXPECT_EQ(on_wire, 10u);

    m.core().post([&] {
        m.surpriseUnplugNic(0);
        // A down NIC advertises no tx space: the stack stalls rather
        // than crashing into the dead device.
        EXPECT_EQ(m.nic().txSpacePackets(1000), 0u);
        m.removeCleanupNic(0);
        ASSERT_TRUE(m.replugNic(0).isOk());
        for (int i = 0; i < 10; ++i)
            ASSERT_TRUE(m.nic().sendPacket(mappedPacket()).isOk());
    });
    sim.run();
    EXPECT_EQ(on_wire, 20u);
    EXPECT_EQ(m.nic().stats().surprise_unplugs, 1u);
    EXPECT_EQ(m.nic().stats().replugs, 1u);

    // Unplug journal order: unplug, cleanup, reattach, replug.
    const auto &log = m.lifecycleLog();
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(log[0].phase, sys::LifecyclePhase::kSurpriseUnplug);
    EXPECT_EQ(log[1].phase, sys::LifecyclePhase::kRemoveCleanup);
    EXPECT_EQ(log[2].phase, sys::LifecyclePhase::kReattach);
    EXPECT_EQ(log[3].phase, sys::LifecyclePhase::kReplug);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, LifecycleModeTest,
    ::testing::Values(ProtectionMode::kStrict, ProtectionMode::kStrictPlus,
                      ProtectionMode::kDefer, ProtectionMode::kDeferPlus,
                      ProtectionMode::kRiommuNc, ProtectionMode::kRiommu,
                      ProtectionMode::kNone),
    [](const ::testing::TestParamInfo<ProtectionMode> &info) {
        std::string n = dma::modeName(info.param);
        for (char &c : n)
            if (c == '-' || c == '+')
                c = '_';
        return n;
    });

// ---- stale-mapping leak detector --------------------------------------------

TEST(LeakDetectorTest, ReportsSkippedUnmapWithRingAndAddress)
{
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    auto handle = ctx.makeHandle(ProtectionMode::kRiommu, Bdf{0, 9, 0},
                                 &acct, std::vector<u32>{8, 8});
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m0 = handle->map(0, buf, 256, DmaDir::kToDevice);
    auto m1 = handle->map(1, buf, 512, DmaDir::kToDevice);
    ASSERT_TRUE(m0.isOk());
    ASSERT_TRUE(m1.isOk());
    // Driver bug under test: ring 0's mapping is unmapped, ring 1's
    // unmap is skipped before the detach.
    ASSERT_TRUE(handle->unmap(m0.value(), true).isOk());
    ASSERT_TRUE(handle->detach().isOk());

    const dma::LeakReport rep = ctx.checkHandleLeaks(*handle);
    EXPECT_FALSE(rep.clean());
    ASSERT_EQ(rep.leaked, 1u);
    EXPECT_EQ(rep.records[0].rid, 1u) << "owner ring reported";
    EXPECT_EQ(rep.records[0].device_addr, m1.value().device_addr);
    EXPECT_EQ(rep.records[0].bdf.pack(), (Bdf{0, 9, 0}).pack());
    EXPECT_NE(rep.toString().find("ring 1"), std::string::npos)
        << rep.toString();
}

TEST(LeakDetectorTest, BaselineSkippedUnmapIsCaught)
{
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    auto handle = ctx.makeHandle(ProtectionMode::kStrict, Bdf{0, 9, 0},
                                 &acct);
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m0 = handle->map(0, buf, 256, DmaDir::kToDevice);
    ASSERT_TRUE(m0.isOk());
    ASSERT_TRUE(handle->detach().isOk());
    const dma::LeakReport rep = ctx.checkHandleLeaks(*handle);
    EXPECT_FALSE(rep.clean());
    EXPECT_EQ(rep.leaked, 1u);
}

// ---- invalidation-queue time-out recovery (ITE analog) ----------------------

class InvalTimeoutTest : public ::testing::Test
{
  protected:
    InvalTimeoutTest()
        : iommu(pm, cost), table_a(pm, false, cost, nullptr),
          table_b(pm, false, cost, nullptr), qi(pm, iommu, cost, 16)
    {
        iommu.attachDevice(a, &table_a);
        iommu.attachDevice(b, &table_b);
        // One live translation per device, resident in the IOTLB.
        EXPECT_TRUE(table_a.map(0x10, 0x99, DmaDir::kBidir).isOk());
        EXPECT_TRUE(table_b.map(0x20, 0x98, DmaDir::kBidir).isOk());
        EXPECT_TRUE(
            iommu.translate(a, 0x10ull << kPageShift, Access::kRead)
                .isOk());
        EXPECT_TRUE(
            iommu.translate(b, 0x20ull << kPageShift, Access::kRead)
                .isOk());
    }

    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    cycles::CycleAccount acct;
    iommu::Iommu iommu;
    Bdf a{0, 3, 0};
    Bdf b{0, 4, 0};
    iommu::IoPageTable table_a, table_b;
    iommu::InvalQueue qi;
};

TEST_F(InvalTimeoutTest, TransientOutageRecoversWithRetryBackoff)
{
    qi.setDeviceResponsive(a.pack(), false);
    Status s = qi.invalidateEntrySync(a, 0x10, &acct);
    EXPECT_EQ(s.code(), ErrorCode::kTimedOut);
    EXPECT_TRUE(qi.queueError()) << "sticky ITE state";
    EXPECT_EQ(qi.stats().timeouts, 1u);
    EXPECT_GT(acct.get(Cat::kLifecycle), 0u)
        << "the bounded spin is charged as lifecycle work";

    // First retry: device still dead, the queue re-freezes.
    EXPECT_EQ(qi.recoverRetry(&acct).code(), ErrorCode::kTimedOut);
    EXPECT_EQ(qi.stats().retries, 1u);

    // Device answers again (transient glitch): retry drains fully.
    qi.setDeviceResponsive(a.pack(), true);
    EXPECT_TRUE(qi.recoverRetry(&acct).isOk());
    EXPECT_FALSE(qi.queueError());
    EXPECT_FALSE(iommu.iotlb().contains(a.pack(), 0x10))
        << "the retried invalidation executed";

    // The queue is healthy: other devices invalidate normally.
    EXPECT_TRUE(qi.invalidateEntrySync(b, 0x20, &acct).isOk());
    EXPECT_FALSE(iommu.iotlb().contains(b.pack(), 0x20));
}

TEST_F(InvalTimeoutTest, AbortSkipPreservesOtherDevicesInvalidations)
{
    qi.setDeviceResponsive(a.pack(), false);
    // A's invalidation freezes the queue at its descriptor; B's,
    // submitted behind the frozen head, times out too but stays
    // queued.
    EXPECT_EQ(qi.invalidateEntrySync(a, 0x10, &acct).code(),
              ErrorCode::kTimedOut);
    EXPECT_EQ(qi.invalidateEntrySync(b, 0x20, &acct).code(),
              ErrorCode::kTimedOut);
    EXPECT_TRUE(iommu.iotlb().contains(a.pack(), 0x10));
    EXPECT_TRUE(iommu.iotlb().contains(b.pack(), 0x20));

    // Abort-queue recovery: skip the dead descriptor; everything
    // behind it — B's invalidation included — executes normally.
    EXPECT_TRUE(qi.abortAndSkip(&acct).isOk());
    EXPECT_FALSE(qi.queueError());
    EXPECT_EQ(qi.head(), qi.tail());
    EXPECT_EQ(qi.stats().head_skips, 1u);
    EXPECT_FALSE(iommu.iotlb().contains(b.pack(), 0x20))
        << "B's queued invalidation survived the recovery";

    // The skipped invalidation never executed: A's stale entry is
    // the caller's to purge in software.
    EXPECT_TRUE(iommu.iotlb().contains(a.pack(), 0x10));
    iommu.iotlb().invalidateEntry(a.pack(), 0x10);
    EXPECT_EQ(iommu.iotlb().validEntriesFor(a.pack()), 0u);
}

// ---- context-cache detach regression (satellite: detachDevice purge) --------

TEST(CtxCacheTest, DetachPurgesIotlbAndContextCache)
{
    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    iommu::Iommu iommu(pm, cost);
    iommu::IoPageTable table(pm, false, cost, nullptr);
    const Bdf bdf{0, 7, 0};
    iommu.attachDevice(bdf, &table);
    ASSERT_TRUE(table.map(0x30, 0x97, DmaDir::kBidir).isOk());
    ASSERT_TRUE(
        iommu.translate(bdf, 0x30ull << kPageShift, Access::kRead)
            .isOk());
    EXPECT_EQ(iommu.contextCacheSize(), 1u);
    EXPECT_GT(iommu.iotlb().validEntriesFor(bdf.pack()), 0u);

    iommu.detachDevice(bdf);
    // Neither cache may keep translating through structures the OS
    // believes are gone.
    EXPECT_EQ(iommu.contextCacheSize(), 0u);
    EXPECT_EQ(iommu.iotlb().validEntriesFor(bdf.pack()), 0u);
    EXPECT_GT(iommu.ctxCacheStats().purges, 0u);
    EXPECT_FALSE(
        iommu.translate(bdf, 0x30ull << kPageShift, Access::kRead)
            .isOk());
}

// ---- churn composes with fault injection ------------------------------------

TEST(ChurnTest, ComposesWithFaultInjection)
{
    workloads::StreamParams p =
        workloads::streamParamsFor(nic::mlxProfile());
    p.measure_packets = 2000;
    p.warmup_packets = 200;
    p.fault_rate = 0.001;
    p.fault_policy = dma::FaultPolicy::kRetryRemap;
    p.churn_per_ms = 1.0;
    p.churn_seed = 7;
    const workloads::RunResult r = workloads::runStream(
        ProtectionMode::kStrict, nic::mlxProfile(), p);
    EXPECT_GT(r.surprise_unplugs, 0u);
    EXPECT_EQ(r.replugs, r.surprise_unplugs);
    EXPECT_GT(r.fault.injected, 0u) << "injection stays armed across "
                                       "unplug/replug transitions";
    EXPECT_GT(r.acct.get(Cat::kLifecycle), 0u);
}

TEST(ChurnTest, DeterministicAcrossRuns)
{
    workloads::StreamParams p =
        workloads::streamParamsFor(nic::mlxProfile());
    p.measure_packets = 2000;
    p.warmup_packets = 200;
    p.churn_per_ms = 2.0;
    p.churn_seed = 11;
    const workloads::RunResult r1 = workloads::runStream(
        ProtectionMode::kRiommu, nic::mlxProfile(), p);
    const workloads::RunResult r2 = workloads::runStream(
        ProtectionMode::kRiommu, nic::mlxProfile(), p);
    EXPECT_GT(r1.surprise_unplugs, 0u);
    EXPECT_EQ(r1.surprise_unplugs, r2.surprise_unplugs);
    EXPECT_EQ(r1.cycles_per_packet, r2.cycles_per_packet)
        << "churn is a deterministic virtual-time process";
}

// ---- non-NIC device families ------------------------------------------------

TEST(NvmeLifecycleTest, SurpriseUnplugMidCommandLeaksNothing)
{
    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core(sim, ctx.cost());
    auto handle = ctx.makeHandle(ProtectionMode::kStrict,
                                 Bdf{0, 6, 0}, &core.acct(),
                                 nvme::NvmeDevice::riommuRingSizes());
    nvme::NvmeDevice ssd(sim, core, ctx.memory(), *handle);
    ssd.bringUp();

    u64 completions = 0;
    ssd.setCompletionCallback([&](u32, Status) { ++completions; });
    const PhysAddr buf = ctx.memory().allocFrame();
    core.post([&] {
        ASSERT_TRUE(ssd.submit(nvme::Opcode::kWrite, 1, 1, buf).isOk());
        ASSERT_TRUE(ssd.submit(nvme::Opcode::kWrite, 2, 1, buf).isOk());
        // The device vanishes with both commands in flight.
        ssd.surpriseUnplug();
        handle->surpriseRemove();
        ssd.removeCleanup();
    });
    sim.run();
    EXPECT_EQ(completions, 0u) << "in-flight completions died with "
                                  "the device";
    EXPECT_EQ(handle->liveMappings(), 0u);
    EXPECT_TRUE(ctx.checkHandleLeaks(*handle).clean());

    // Reattach + replug: the device serves commands again.
    ASSERT_TRUE(handle->reattach().isOk());
    core.post([&] {
        ssd.replug();
        ASSERT_TRUE(ssd.submit(nvme::Opcode::kWrite, 3, 1, buf).isOk());
    });
    sim.run();
    EXPECT_EQ(completions, 1u);
    EXPECT_TRUE(ctx.checkHandleLeaks(*handle).clean() ||
                handle->liveMappings() > 0)
        << "queues remapped after replug";
}

TEST(AhciLifecycleTest, SurpriseUnplugClearsBacklogAndReplugs)
{
    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core(sim, ctx.cost());
    auto handle = ctx.makeHandle(ProtectionMode::kStrict,
                                 Bdf{0, 5, 0}, &core.acct());
    ahci::AhciDevice disk(sim, core, ctx.memory(), *handle);
    u64 completions = 0;
    disk.setCompletionCallback([&](u32, Status) { ++completions; });
    const PhysAddr buf = ctx.memory().allocContiguous(16 * kPageSize);
    core.post([&] {
        for (u64 i = 0; i < 8; ++i)
            ASSERT_TRUE(disk.issue(false, i * 64, 4, buf).isOk());
        disk.surpriseUnplug();
        handle->surpriseRemove();
        // A vanished drive rejects new commands with a typed error.
        EXPECT_EQ(disk.issue(false, 999, 1, buf).status().code(),
                  ErrorCode::kDetached);
        disk.removeCleanup();
    });
    sim.run();
    EXPECT_EQ(completions, 0u);
    EXPECT_EQ(handle->liveMappings(), 0u);
    EXPECT_TRUE(ctx.checkHandleLeaks(*handle).clean());

    ASSERT_TRUE(handle->reattach().isOk());
    core.post([&] {
        disk.replug();
        ASSERT_TRUE(disk.issue(false, 0, 1, buf).isOk());
    });
    sim.run();
    EXPECT_EQ(completions, 1u);
}

} // namespace
} // namespace rio
