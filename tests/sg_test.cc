/**
 * @file
 * Tests for the scatter-gather mapping API: the baseline's single
 * contiguous IOVA range (intel-iommu dma_map_sg semantics), the
 * generic per-element path used by the rIOMMU and none modes,
 * rollback on partial failure, and end-to-end data movement.
 */
#include <gtest/gtest.h>

#include "dma/baseline_handle.h"
#include "dma/dma_context.h"

namespace rio::dma {
namespace {

using iommu::Bdf;
using iommu::DmaDir;

class SgTest : public ::testing::Test
{
  protected:
    DmaContext ctx;
    cycles::CycleAccount acct;
    Bdf bdf{0, 3, 0};
};

TEST_F(SgTest, BaselineSgSharesOneContiguousRange)
{
    auto handle = ctx.makeHandle(ProtectionMode::kStrict, bdf, &acct);
    std::vector<SgEntry> sg;
    for (int i = 0; i < 4; ++i)
        sg.push_back(SgEntry{ctx.memory().allocFrame(), 3000});

    const u64 allocs_before = acct.ops(cycles::Cat::kMapIovaAlloc);
    auto m = handle->mapSg(0, sg, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    ASSERT_EQ(m.value().size(), 4u);
    EXPECT_EQ(acct.ops(cycles::Cat::kMapIovaAlloc), allocs_before + 1)
        << "one IOVA allocation for the whole list";

    // Consecutive page-aligned device addresses.
    for (size_t i = 1; i < m.value().size(); ++i) {
        EXPECT_EQ(m.value()[i].device_addr & ~kPageMask,
                  (m.value()[i - 1].device_addr & ~kPageMask) + kPageSize);
    }

    // Each element round-trips to its own physical buffer.
    for (size_t i = 0; i < sg.size(); ++i) {
        u64 cookie = 0xc0de + i;
        ASSERT_TRUE(handle
                        ->deviceWrite(m.value()[i].device_addr, &cookie,
                                      8)
                        .isOk());
        EXPECT_EQ(ctx.memory().read64(sg[i].pa), cookie);
    }

    ASSERT_TRUE(handle->unmapSg(m.value(), true).isOk());
    EXPECT_EQ(handle->liveMappings(), 0u);
    u64 v;
    for (const auto &mapping : m.value())
        EXPECT_FALSE(handle->deviceRead(mapping.device_addr, &v, 8).isOk());
}

TEST_F(SgTest, RiommuSgMapsOneRPtePerElement)
{
    auto handle =
        ctx.makeHandle(ProtectionMode::kRiommu, bdf, &acct, {64});
    std::vector<SgEntry> sg;
    const PhysAddr base = ctx.memory().allocContiguous(2 * kPageSize);
    for (int i = 0; i < 5; ++i)
        sg.push_back(SgEntry{base + static_cast<u64>(i) * 1000, 1000});
    auto m = handle->mapSg(0, sg, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    EXPECT_EQ(handle->liveMappings(), 5u)
        << "rIOMMU: one byte-granular rPTE per element";
    for (size_t i = 0; i < sg.size(); ++i) {
        u64 cookie = i;
        ASSERT_TRUE(handle
                        ->deviceWrite(m.value()[i].device_addr, &cookie,
                                      8)
                        .isOk());
        EXPECT_EQ(ctx.memory().read64(sg[i].pa), cookie);
    }
    ASSERT_TRUE(handle->unmapSg(m.value(), true).isOk());
    EXPECT_EQ(handle->liveMappings(), 0u);
}

TEST_F(SgTest, GenericRollbackOnPartialFailure)
{
    // A 4-entry rRING cannot take a 6-element list; nothing may leak.
    auto handle =
        ctx.makeHandle(ProtectionMode::kRiommu, bdf, &acct, {4});
    std::vector<SgEntry> sg(6, SgEntry{ctx.memory().allocFrame(), 256});
    auto m = handle->mapSg(0, sg, DmaDir::kBidir);
    EXPECT_FALSE(m.isOk());
    EXPECT_EQ(m.status().code(), ErrorCode::kOverflow);
    EXPECT_EQ(handle->liveMappings(), 0u) << "partial maps rolled back";
    // The ring is still fully usable afterwards.
    auto ok = handle->mapSg(
        0, std::vector<SgEntry>(4, SgEntry{sg[0].pa, 256}),
        DmaDir::kBidir);
    ASSERT_TRUE(ok.isOk());
    ASSERT_TRUE(handle->unmapSg(ok.value(), true).isOk());
}

TEST_F(SgTest, EmptyListRejected)
{
    auto handle = ctx.makeHandle(ProtectionMode::kStrict, bdf, &acct);
    EXPECT_EQ(handle->mapSg(0, {}, DmaDir::kBidir).status().code(),
              ErrorCode::kInvalidArgument);
}

TEST_F(SgTest, NoneModeSgIsIdentity)
{
    auto handle = ctx.makeHandle(ProtectionMode::kNone, bdf, &acct);
    std::vector<SgEntry> sg = {SgEntry{ctx.memory().allocFrame(), 100},
                               SgEntry{ctx.memory().allocFrame(), 100}};
    auto m = handle->mapSg(0, sg, DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    EXPECT_EQ(m.value()[0].device_addr, sg[0].pa);
    EXPECT_EQ(m.value()[1].device_addr, sg[1].pa);
    ASSERT_TRUE(handle->unmapSg(m.value(), true).isOk());
}

} // namespace
} // namespace rio::dma
