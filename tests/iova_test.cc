/**
 * @file
 * Tests for the two IOVA allocators: functional correctness, the
 * Linux allocator's top-down placement and cached-node pathology, and
 * the magazine allocator's constant-time behaviour with its fuller
 * tree (paper §3.2 / Table 1).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "base/rng.h"
#include "cycles/cycle_account.h"
#include "iova/linux_allocator.h"
#include "iova/magazine_allocator.h"

namespace rio::iova {
namespace {

using cycles::Cat;
using cycles::CycleAccount;

constexpr u64 kLimitPfn = (u64{1} << 32) >> kPageShift; // 1 Mi pfns

class LinuxAllocatorTest : public ::testing::Test
{
  protected:
    CycleAccount acct;
    cycles::CostModel cost;
    LinuxIovaAllocator alloc{kLimitPfn, &acct, cost};
};

TEST_F(LinuxAllocatorTest, AllocatesTopDown)
{
    auto a = alloc.alloc(1);
    auto b = alloc.alloc(1);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(a.value().pfn_hi, kLimitPfn);
    EXPECT_LT(b.value().pfn_hi, a.value().pfn_lo);
    EXPECT_EQ(alloc.live(), 2u);
}

TEST_F(LinuxAllocatorTest, SizeAlignedMultiPageAllocation)
{
    auto r = alloc.alloc(8);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value().npages(), 8u);
    EXPECT_EQ(r.value().pfn_lo % 8, 0u) << "Linux allocates size-aligned";
}

TEST_F(LinuxAllocatorTest, FindLocatesContainingRange)
{
    auto r = alloc.alloc(4);
    ASSERT_TRUE(r.isOk());
    auto found = alloc.find(r.value().pfn_lo + 2);
    ASSERT_TRUE(found.isOk());
    EXPECT_EQ(found.value().pfn_lo, r.value().pfn_lo);
    EXPECT_FALSE(alloc.find(12345).isOk());
}

TEST_F(LinuxAllocatorTest, FreeMakesSpaceReusable)
{
    auto a = alloc.alloc(1);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(alloc.free(a.value().pfn_lo).isOk());
    EXPECT_EQ(alloc.live(), 0u);
    auto b = alloc.alloc(1);
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(b.value().pfn_lo, a.value().pfn_lo) << "hole is refilled";
}

TEST_F(LinuxAllocatorTest, DoubleFreeFails)
{
    auto a = alloc.alloc(1);
    ASSERT_TRUE(alloc.free(a.value().pfn_lo).isOk());
    EXPECT_EQ(alloc.free(a.value().pfn_lo).code(), ErrorCode::kNotFound);
}

TEST_F(LinuxAllocatorTest, ExhaustionReturnsResourceExhausted)
{
    LinuxIovaAllocator tiny(8, &acct, cost);
    // pfns 1..8 available -> at most 8 single pages, minus alignment.
    std::vector<u64> got;
    for (;;) {
        auto r = tiny.alloc(1);
        if (!r.isOk()) {
            EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
            break;
        }
        got.push_back(r.value().pfn_lo);
        ASSERT_LE(got.size(), 8u);
    }
    EXPECT_GE(got.size(), 7u);
}

TEST_F(LinuxAllocatorTest, ChargesTheRightCategories)
{
    auto a = alloc.alloc(1);
    EXPECT_GT(acct.get(Cat::kMapIovaAlloc), 0u);
    EXPECT_EQ(acct.get(Cat::kUnmapIovaFind), 0u);
    (void)alloc.find(a.value().pfn_lo);
    EXPECT_GT(acct.get(Cat::kUnmapIovaFind), 0u);
    (void)alloc.free(a.value().pfn_lo);
    EXPECT_GT(acct.get(Cat::kUnmapIovaFree), 0u);
}

TEST_F(LinuxAllocatorTest, TreeStaysValidUnderChurn)
{
    Rng rng(5);
    std::vector<u64> live;
    for (int i = 0; i < 5000; ++i) {
        if (live.empty() || rng.chance(0.55)) {
            auto r = alloc.alloc(1);
            ASSERT_TRUE(r.isOk());
            live.push_back(r.value().pfn_lo);
        } else {
            const size_t idx = rng.below(live.size());
            ASSERT_TRUE(alloc.free(live[idx]).isOk());
            live.erase(live.begin() + static_cast<long>(idx));
        }
    }
    EXPECT_TRUE(alloc.validate());
    EXPECT_EQ(alloc.live(), live.size());
}

/**
 * The pathology of §3.2: a block of long-lived mappings sits at the
 * top of the space (Rx buffers mapped at device init). A FIFO churn
 * that frequently frees the *highest* transient mapping resets the
 * cached node, and the next allocation then rescans linearly across
 * the long-lived block. The stock allocator's average alloc scan
 * must therefore grow with the number of long-lived mappings.
 */
TEST(LinuxAllocatorPathology, ScanLengthGrowsWithLiveMappings)
{
    cycles::CostModel cost;
    // One pathology episode: (1) free the topmost mapping — its
    // successor is nil, so the cached node RESETS; (2) free a
    // transient far below — cache stays empty; (3) the next alloc
    // refills the top hole (cheap) and re-caches at the top; (4) the
    // alloc after that must scan from the top across the entire
    // long-lived block to reach the low hole. Interleaved Rx/Tx
    // (un)maps produce exactly this interleaving (paper §3.2).
    auto avg_scan = [&](u64 persistent) {
        CycleAccount acct;
        LinuxIovaAllocator alloc(kLimitPfn, &acct, cost);
        std::deque<u64> block; // long-lived block; front() is topmost
        for (u64 i = 0; i < persistent; ++i)
            block.push_back(alloc.alloc(1).value().pfn_lo);
        u64 low = alloc.alloc(1).value().pfn_lo; // transient below

        const u64 before = alloc.totalAllocVisits();
        const u64 calls_before = alloc.allocCalls();
        for (int i = 0; i < 50; ++i) {
            EXPECT_TRUE(alloc.free(block.front()).isOk()); // top: reset
            block.pop_front();
            EXPECT_TRUE(alloc.free(low).isOk()); // low hole
            block.push_front(alloc.alloc(1).value().pfn_lo); // refill top
            low = alloc.alloc(1).value().pfn_lo; // long scan down
        }
        return static_cast<double>(alloc.totalAllocVisits() - before) /
               static_cast<double>(alloc.allocCalls() - calls_before);
    };

    const double small = avg_scan(64);
    const double big = avg_scan(4096);
    EXPECT_GT(big, small * 8)
        << "allocation cost must scale with live long-lived mappings";
    EXPECT_GT(big, 1000.0) << "half the block per episode, 2 allocs each";
}

class MagazineAllocatorTest : public ::testing::Test
{
  protected:
    CycleAccount acct;
    cycles::CostModel cost;
    MagazineIovaAllocator alloc{kLimitPfn, &acct, cost};
};

TEST_F(MagazineAllocatorTest, RoundTrip)
{
    auto a = alloc.alloc(2);
    ASSERT_TRUE(a.isOk());
    EXPECT_EQ(alloc.live(), 1u);
    auto found = alloc.find(a.value().pfn_lo + 1);
    ASSERT_TRUE(found.isOk());
    ASSERT_TRUE(alloc.free(a.value().pfn_lo).isOk());
    EXPECT_EQ(alloc.live(), 0u);
}

TEST_F(MagazineAllocatorTest, FreedRangeIsRecycledFromMagazine)
{
    auto a = alloc.alloc(1);
    ASSERT_TRUE(alloc.free(a.value().pfn_lo).isOk());
    EXPECT_EQ(alloc.parked(), 1u);
    auto b = alloc.alloc(1);
    EXPECT_EQ(b.value().pfn_lo, a.value().pfn_lo);
    EXPECT_EQ(alloc.magazineHits(), 1u);
    EXPECT_EQ(alloc.parked(), 0u);
}

TEST_F(MagazineAllocatorTest, MagazinesAreSizeSegregated)
{
    auto small = alloc.alloc(1);
    auto big = alloc.alloc(4);
    ASSERT_TRUE(alloc.free(small.value().pfn_lo).isOk());
    ASSERT_TRUE(alloc.free(big.value().pfn_lo).isOk());
    auto big2 = alloc.alloc(4);
    EXPECT_EQ(big2.value().pfn_lo, big.value().pfn_lo)
        << "4-page magazine must serve 4-page allocation";
}

TEST_F(MagazineAllocatorTest, FindFailsOnParkedRange)
{
    auto a = alloc.alloc(1);
    ASSERT_TRUE(alloc.free(a.value().pfn_lo).isOk());
    EXPECT_FALSE(alloc.find(a.value().pfn_lo).isOk())
        << "a freed (parked) IOVA must not look allocated";
    EXPECT_EQ(alloc.free(a.value().pfn_lo).code(), ErrorCode::kNotFound);
}

TEST_F(MagazineAllocatorTest, SteadyStateAllocIsConstantTime)
{
    // Warm up: build the working set.
    std::deque<u64> window;
    for (int i = 0; i < 256; ++i)
        window.push_back(alloc.alloc(1).value().pfn_lo);
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(alloc.free(window.front()).isOk());
        window.pop_front();
        window.push_back(alloc.alloc(1).value().pfn_lo);
    }
    acct.reset();
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(alloc.free(window.front()).isOk());
        window.pop_front();
        window.push_back(alloc.alloc(1).value().pfn_lo);
    }
    // Table 1 strict+: alloc 92, free 62. Allow modest slack.
    EXPECT_LT(acct.avg(Cat::kMapIovaAlloc), 150.0);
    EXPECT_LT(acct.avg(Cat::kUnmapIovaFree), 100.0);
    EXPECT_EQ(alloc.treeSize(), 256u) << "tree holds live + parked only";
}

TEST_F(MagazineAllocatorTest, TreeIsFullerThanLiveSet)
{
    std::vector<u64> batch;
    for (int i = 0; i < 100; ++i)
        batch.push_back(alloc.alloc(1).value().pfn_lo);
    for (u64 pfn : batch)
        ASSERT_TRUE(alloc.free(pfn).isOk());
    EXPECT_EQ(alloc.live(), 0u);
    EXPECT_EQ(alloc.treeSize(), 100u)
        << "parked ranges stay in the tree (the fuller-tree effect "
           "behind Table 1's costlier strict+ iova-find)";
}

/**
 * Property sweep over both allocators: random churn with model-based
 * checking of find()/free() semantics.
 */
enum class Kind { kLinux, kMagazine };

class AllocatorSweep
    : public ::testing::TestWithParam<std::tuple<Kind, u64, int>>
{
};

TEST_P(AllocatorSweep, RandomChurnKeepsSemantics)
{
    auto [kind, seed, ops] = GetParam();
    CycleAccount acct;
    cycles::CostModel cost;
    std::unique_ptr<IovaAllocator> alloc;
    if (kind == Kind::kLinux)
        alloc = std::make_unique<LinuxIovaAllocator>(kLimitPfn, &acct, cost);
    else
        alloc =
            std::make_unique<MagazineIovaAllocator>(kLimitPfn, &acct, cost);

    Rng rng(seed);
    std::vector<IovaRange> live;
    for (int i = 0; i < ops; ++i) {
        if (live.empty() || rng.chance(0.5)) {
            const u64 npages = 1 + rng.below(4);
            auto r = alloc->alloc(npages);
            ASSERT_TRUE(r.isOk());
            // Disjointness against all live ranges.
            for (const auto &other : live) {
                ASSERT_TRUE(r.value().pfn_hi < other.pfn_lo ||
                            r.value().pfn_lo > other.pfn_hi);
            }
            live.push_back(r.value());
        } else {
            const size_t idx = rng.below(live.size());
            const IovaRange victim = live[idx];
            auto found = alloc->find(victim.pfn_lo);
            ASSERT_TRUE(found.isOk());
            ASSERT_EQ(found.value().pfn_lo, victim.pfn_lo);
            ASSERT_TRUE(alloc->free(victim.pfn_lo).isOk());
            live.erase(live.begin() + static_cast<long>(idx));
        }
        ASSERT_EQ(alloc->live(), live.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Churn, AllocatorSweep,
    ::testing::Combine(::testing::Values(Kind::kLinux, Kind::kMagazine),
                       ::testing::Values(u64{1}, u64{2}, u64{3}),
                       ::testing::Values(2000)));

// ---- per-core magazine pair over the depot (ROADMAP perf debt) -------

/** With the core cache off (default) behaviour and charges are the
 * legacy per-handle depot, bit for bit. */
TEST(MagazineCoreCache, DefaultOffIsLegacyBitIdentical)
{
    CycleAccount legacy_acct, off_acct;
    cycles::CostModel cost;
    MagazineIovaAllocator legacy{kLimitPfn, &legacy_acct, cost};
    MagazineIovaAllocator off{kLimitPfn, &off_acct, cost};
    off.setCoreCache(16);
    off.setCoreCache(0); // install, then restore the legacy layout

    Rng rng_a(42), rng_b(42);
    std::vector<u64> live_a, live_b;
    for (int i = 0; i < 1500; ++i) {
        const bool do_alloc =
            live_a.empty() || rng_a.chance(0.55);
        (void)rng_b.chance(0.55); // keep streams aligned
        if (do_alloc) {
            auto a = legacy.alloc(1);
            auto b = off.alloc(1);
            ASSERT_TRUE(a.isOk());
            ASSERT_TRUE(b.isOk());
            ASSERT_EQ(a.value().pfn_lo, b.value().pfn_lo);
            live_a.push_back(a.value().pfn_lo);
            live_b.push_back(b.value().pfn_lo);
        } else {
            ASSERT_TRUE(legacy.free(live_a.back()).isOk());
            ASSERT_TRUE(off.free(live_b.back()).isOk());
            live_a.pop_back();
            live_b.pop_back();
        }
    }
    EXPECT_EQ(legacy_acct.total(), off_acct.total())
        << "core cache disabled must charge exactly the legacy costs";
    EXPECT_EQ(off.depotExchanges(), 0u);
}

/** Steady-state churn through the core pair touches the locked depot
 * only once per `rounds` ops — the Bonwick amortization the ROADMAP
 * perf-debt item asked for. */
TEST(MagazineCoreCache, DepotLockAmortizedToOncePerRounds)
{
    CycleAccount acct;
    cycles::CostModel cost;
    MagazineIovaAllocator alloc{kLimitPfn, &acct, cost};
    const u32 rounds = 16;
    alloc.setCoreCache(rounds);

    const int kOps = 4000; // alloc+free pairs, single size class
    for (int i = 0; i < kOps; ++i) {
        auto r = alloc.alloc(1);
        ASSERT_TRUE(r.isOk());
        ASSERT_TRUE(alloc.free(r.value().pfn_lo).isOk());
    }
    EXPECT_TRUE(alloc.validate());
    EXPECT_EQ(alloc.live(), 0u);
    // 2*kOps magazine ops; every op except depot exchanges and the
    // initial fresh carve is served by the loaded/previous pair.
    EXPECT_GE(alloc.coreHits(), static_cast<u64>(2 * kOps) - 1 -
                                    alloc.depotExchanges() * rounds);
    EXPECT_LE(alloc.depotExchanges(),
              static_cast<u64>(2 * kOps) / rounds + 2)
        << "more than one depot (lock) trip per " << rounds
        << " ops defeats the per-core pair";
}

/** Correctness under mixed-size churn with the core cache on:
 * disjoint live ranges, clean drain, valid tree. */
TEST(MagazineCoreCache, MixedChurnStaysConsistent)
{
    CycleAccount acct;
    cycles::CostModel cost;
    MagazineIovaAllocator alloc{kLimitPfn, &acct, cost};
    alloc.setCoreCache(8);

    Rng rng(7);
    std::vector<IovaRange> live;
    for (int i = 0; i < 3000; ++i) {
        if (live.empty() || rng.chance(0.6)) {
            auto r = alloc.alloc(1 + rng.below(3));
            ASSERT_TRUE(r.isOk());
            for (const auto &other : live)
                ASSERT_TRUE(r.value().pfn_hi < other.pfn_lo ||
                            r.value().pfn_lo > other.pfn_hi);
            live.push_back(r.value());
        } else {
            const size_t idx = rng.below(live.size());
            ASSERT_TRUE(alloc.free(live[idx].pfn_lo).isOk());
            live.erase(live.begin() + static_cast<long>(idx));
        }
        ASSERT_EQ(alloc.live(), live.size());
    }
    while (!live.empty()) {
        ASSERT_TRUE(alloc.free(live.back().pfn_lo).isOk());
        live.pop_back();
    }
    EXPECT_EQ(alloc.live(), 0u);
    EXPECT_TRUE(alloc.validate());
    EXPECT_GT(alloc.coreHits(), 0u);
}

/** Toggling the cache mid-life reparents parked ranges without
 * losing or duplicating any. */
TEST(MagazineCoreCache, ToggleFlushesWithoutLoss)
{
    CycleAccount acct;
    cycles::CostModel cost;
    MagazineIovaAllocator alloc{kLimitPfn, &acct, cost};
    alloc.setCoreCache(4);

    std::vector<u64> lows;
    for (int i = 0; i < 32; ++i) {
        auto r = alloc.alloc(1);
        ASSERT_TRUE(r.isOk());
        lows.push_back(r.value().pfn_lo);
    }
    for (u64 lo : lows)
        ASSERT_TRUE(alloc.free(lo).isOk());
    const u64 parked = alloc.parked();
    EXPECT_EQ(parked, 32u);

    alloc.setCoreCache(0); // core pair + depot flushed to flat stacks
    EXPECT_EQ(alloc.parked(), parked);
    alloc.setCoreCache(8); // reseeded from the stacks
    EXPECT_EQ(alloc.parked(), parked);

    // Every parked range is reallocatable exactly once.
    std::vector<u64> again;
    for (int i = 0; i < 32; ++i) {
        auto r = alloc.alloc(1);
        ASSERT_TRUE(r.isOk());
        again.push_back(r.value().pfn_lo);
    }
    std::sort(lows.begin(), lows.end());
    std::sort(again.begin(), again.end());
    EXPECT_EQ(lows, again);
    EXPECT_TRUE(alloc.validate());
}

} // namespace
} // namespace rio::iova
