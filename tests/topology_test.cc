/**
 * @file
 * Tests for the N-core x M-device Machine topology: NIC, NVMe and
 * AHCI devices coexisting on one DmaContext and one PCI BDF space,
 * mapping isolation between the devices' translations, and
 * per-device teardown leaving the other devices' DMA intact.
 */
#include <gtest/gtest.h>

#include "ahci/ahci.h"
#include "nvme/nvme.h"
#include "sys/machine.h"

namespace rio::sys {
namespace {

using dma::ProtectionMode;

nic::NicProfile
testProfile()
{
    nic::NicProfile p; // small rings for fast tests
    p.name = "test";
    p.line_rate_gbps = 10.0;
    p.tx_buffers_per_packet = 2;
    p.rx_rings = 2;
    p.rx_ring_entries = 32;
    p.tx_ring_entries = 64;
    p.tx_completion_batch = 16;
    p.tx_irq_delay_ns = 5000;
    p.rx_irq_delay_ns = 1000;
    return p;
}

TEST(TopologyTest, DevicesGetDistinctBdfsInOneSpace)
{
    des::Simulator sim;
    Machine m(sim, ProtectionMode::kStrict, /*ncores=*/2);
    m.attachNic(testProfile(), 0);
    dma::DmaHandle &nvme = m.attachDeviceHandle(1);
    dma::DmaHandle &ahci = m.attachDeviceHandle(1);

    // Legacy BDF start preserved; each device gets the next slot.
    EXPECT_EQ(m.handle(0).bdf().pack(), (iommu::Bdf{0, 3, 0}.pack()));
    EXPECT_EQ(nvme.bdf().pack(), (iommu::Bdf{0, 4, 0}.pack()));
    EXPECT_EQ(ahci.bdf().pack(), (iommu::Bdf{0, 5, 0}.pack()));
    EXPECT_EQ(m.numCores(), 2u);
    EXPECT_EQ(m.numNics(), 1u);
}

class TopologyModeTest : public ::testing::TestWithParam<ProtectionMode>
{
};

TEST_P(TopologyModeTest, MappingsAreIsolatedBetweenDevices)
{
    des::Simulator sim;
    Machine m(sim, GetParam(), /*ncores=*/2);
    dma::DmaHandle &h1 = m.attachDeviceHandle(0, {8});
    dma::DmaHandle &h2 = m.attachDeviceHandle(1, {8});

    const PhysAddr pa1 = m.ctx().memory().allocFrame();
    const PhysAddr pa2 = m.ctx().memory().allocFrame();
    auto m1 = h1.map(0, pa1, 64, iommu::DmaDir::kBidir);
    auto m2 = h2.map(0, pa2, 64, iommu::DmaDir::kBidir);
    ASSERT_TRUE(m1.isOk());
    ASSERT_TRUE(m2.isOk());

    // Each device reaches its own buffer through its own handle...
    u64 v = 0x1111;
    EXPECT_TRUE(h1.deviceWrite(m1.value().device_addr, &v, 8).isOk());
    v = 0x2222;
    EXPECT_TRUE(h2.deviceWrite(m2.value().device_addr, &v, 8).isOk());
    EXPECT_EQ(m.ctx().memory().read64(pa1), 0x1111u);
    EXPECT_EQ(m.ctx().memory().read64(pa2), 0x2222u);

    // ...and the two BDFs translate through disjoint state. The
    // per-device address spaces are truly separate — both start
    // allocating at the same device address — yet the same numeric
    // address reaches a different buffer through each handle, never
    // the other device's buffer.
    EXPECT_EQ(m1.value().device_addr, m2.value().device_addr);
    m.ctx().memory().write64(pa1, 0xdead);
    v = 0x3333;
    (void)h2.deviceWrite(m1.value().device_addr, &v, 8);
    EXPECT_EQ(m.ctx().memory().read64(pa1), 0xdeadu);
    EXPECT_EQ(m.ctx().memory().read64(pa2), 0x3333u);

    // Tearing down device 1's mapping does not invalidate device 2's
    // translation of the same numeric address.
    EXPECT_TRUE(h1.unmap(m1.value(), true).isOk());
    v = 0x4444;
    EXPECT_TRUE(h2.deviceWrite(m2.value().device_addr, &v, 8).isOk());
    EXPECT_EQ(m.ctx().memory().read64(pa2), 0x4444u);
    EXPECT_TRUE(h2.unmap(m2.value(), true).isOk());
}

TEST_P(TopologyModeTest, TeardownOfOneDeviceLeavesOthersIntact)
{
    des::Simulator sim;
    Machine m(sim, GetParam(), /*ncores=*/1);
    // Victim handle created directly on the machine's context so we
    // control its lifetime; survivor attached to the machine.
    auto victim = m.ctx().makeHandle(GetParam(), iommu::Bdf{0, 30, 0},
                                     &m.acct(), {8}, &m.core());
    dma::DmaHandle &survivor = m.attachDeviceHandle(0, {8});

    const PhysAddr pa_v = m.ctx().memory().allocFrame();
    const PhysAddr pa_s = m.ctx().memory().allocFrame();
    auto map_v = victim->map(0, pa_v, 64, iommu::DmaDir::kBidir);
    auto map_s = survivor.map(0, pa_s, 64, iommu::DmaDir::kBidir);
    ASSERT_TRUE(map_v.isOk());
    ASSERT_TRUE(map_s.isOk());

    ASSERT_TRUE(victim->unmap(map_v.value(), true).isOk());
    victim.reset(); // tear the whole device down

    // The survivor's live translation still works end to end.
    u64 v = 0xbeef;
    EXPECT_TRUE(
        survivor.deviceWrite(map_s.value().device_addr, &v, 8).isOk());
    EXPECT_EQ(m.ctx().memory().read64(pa_s), 0xbeefu);
    EXPECT_TRUE(survivor.unmap(map_s.value(), true).isOk());

    // And new devices can still join the context afterwards.
    dma::DmaHandle &late = m.attachDeviceHandle(0, {8});
    auto map_l = late.map(0, pa_v, 64, iommu::DmaDir::kBidir);
    ASSERT_TRUE(map_l.isOk());
    EXPECT_TRUE(late.unmap(map_l.value(), true).isOk());
}

INSTANTIATE_TEST_SUITE_P(AllModes, TopologyModeTest,
                         ::testing::Values(ProtectionMode::kStrict,
                                           ProtectionMode::kDefer,
                                           ProtectionMode::kRiommu));

TEST(TopologyTest, NicNvmeAhciMoveDataOnOneContext)
{
    // Three device kinds, three cores, one DmaContext: traffic on
    // all of them concurrently, each through its own translations.
    des::Simulator sim;
    Machine m(sim, ProtectionMode::kStrict, /*ncores=*/3);
    m.attachNic(testProfile(), 0);

    dma::DmaHandle &nvme_h =
        m.attachDeviceHandle(1, nvme::NvmeDevice::riommuRingSizes());
    nvme::NvmeDevice nvme(sim, m.core(1), m.ctx().memory(), nvme_h);
    nvme.bringUp();

    dma::DmaHandle &ahci_h = m.attachDeviceHandle(2);
    ahci::AhciDevice ahci(sim, m.core(2), m.ctx().memory(), ahci_h);

    m.bringUp();

    // NIC: push a handful of packets onto the wire.
    u64 on_wire = 0;
    m.nic().setWireTxCallback([&](const net::Packet &) { ++on_wire; });
    m.core(0).post([&] {
        for (int i = 0; i < 8; ++i) {
            net::Packet pkt;
            pkt.payload_bytes = net::kMss;
            ASSERT_TRUE(m.nic().sendPacket(pkt).isOk());
        }
    });

    // NVMe: write one block out of simulated memory.
    u64 nvme_done = 0;
    nvme.setCompletionCallback(
        [&](u32, Status s) { nvme_done += s.isOk(); });
    const PhysAddr nvme_buf = m.ctx().memory().allocFrame();
    m.core(1).post([&] {
        ASSERT_TRUE(
            nvme.submit(nvme::Opcode::kWrite, 0, 1, nvme_buf).isOk());
    });

    // AHCI: one sector read into simulated memory.
    u64 ahci_done = 0;
    ahci.setCompletionCallback(
        [&](u32, Status s) { ahci_done += s.isOk(); });
    const PhysAddr ahci_buf = m.ctx().memory().allocFrame();
    m.core(2).post(
        [&] { ASSERT_TRUE(ahci.issue(false, 8, 1, ahci_buf).isOk()); });

    sim.run();
    EXPECT_EQ(on_wire, 8u);
    EXPECT_EQ(nvme_done, 1u);
    EXPECT_EQ(ahci_done, 1u);
}

TEST(TopologyTest, RiommuNicAndNvmeCoexist)
{
    // The rIOMMU modes also support the multi-device topology: rings
    // are per-device, so two devices on one context never interact.
    des::Simulator sim;
    Machine m(sim, ProtectionMode::kRiommu, /*ncores=*/2);
    m.attachNic(testProfile(), 0);
    dma::DmaHandle &nvme_h =
        m.attachDeviceHandle(1, nvme::NvmeDevice::riommuRingSizes());
    nvme::NvmeDevice nvme(sim, m.core(1), m.ctx().memory(), nvme_h);
    nvme.bringUp();
    m.bringUp();

    u64 on_wire = 0;
    m.nic().setWireTxCallback([&](const net::Packet &) { ++on_wire; });
    u64 nvme_done = 0;
    nvme.setCompletionCallback(
        [&](u32, Status s) { nvme_done += s.isOk(); });
    const PhysAddr buf = m.ctx().memory().allocFrame();
    m.core(0).post([&] {
        net::Packet pkt;
        pkt.payload_bytes = net::kMss;
        ASSERT_TRUE(m.nic().sendPacket(pkt).isOk());
    });
    m.core(1).post([&] {
        ASSERT_TRUE(
            nvme.submit(nvme::Opcode::kRead, 0, 1, buf).isOk());
    });
    sim.run();
    EXPECT_EQ(on_wire, 1u);
    EXPECT_EQ(nvme_done, 1u);
    EXPECT_EQ(m.iovaLockStats().acquisitions, 0u);
}

} // namespace
} // namespace rio::sys
