/**
 * @file
 * Unit tests for the simulated physical memory.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/phys_mem.h"

namespace rio::mem {
namespace {

TEST(PhysicalMemory, UntouchedMemoryReadsZero)
{
    PhysicalMemory pm;
    EXPECT_EQ(pm.read64(0x1000), 0u);
    u8 buf[16];
    pm.read(0x12345, buf, sizeof(buf));
    for (u8 b : buf)
        EXPECT_EQ(b, 0);
}

TEST(PhysicalMemory, ReadBackWhatWasWritten)
{
    PhysicalMemory pm;
    pm.write64(0x2000, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(pm.read64(0x2000), 0xdeadbeefcafef00dULL);
    pm.write32(0x3000, 0x12345678);
    EXPECT_EQ(pm.read32(0x3000), 0x12345678u);
    pm.write8(0x3004, 0xab);
    EXPECT_EQ(pm.read8(0x3004), 0xab);
}

TEST(PhysicalMemory, CrossPageTransfer)
{
    PhysicalMemory pm;
    std::vector<u8> src(3 * kPageSize);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<u8>(i * 37);
    const PhysAddr addr = 2 * kPageSize - 100; // straddles boundaries
    pm.write(addr, src.data(), src.size());
    std::vector<u8> dst(src.size());
    pm.read(addr, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
}

TEST(PhysicalMemory, ObjectRoundTrip)
{
    struct Desc
    {
        u64 addr;
        u32 len;
        u32 flags;
    };
    PhysicalMemory pm;
    const Desc d{0xabc, 1500, 7};
    pm.writeObject(0x8000, d);
    const Desc r = pm.readObject<Desc>(0x8000);
    EXPECT_EQ(r.addr, d.addr);
    EXPECT_EQ(r.len, d.len);
    EXPECT_EQ(r.flags, d.flags);
}

TEST(PhysicalMemory, FillZero)
{
    PhysicalMemory pm;
    pm.write64(0x1000, ~u64{0});
    pm.fillZero(0x1000, 8);
    EXPECT_EQ(pm.read64(0x1000), 0u);
}

TEST(PhysicalMemory, FrameAllocationIsZeroedAndDistinct)
{
    PhysicalMemory pm;
    const PhysAddr a = pm.allocFrame();
    const PhysAddr b = pm.allocFrame();
    EXPECT_NE(a, b);
    EXPECT_TRUE(isPageAligned(a));
    EXPECT_TRUE(isPageAligned(b));
    EXPECT_EQ(pm.allocatedFrames(), 2u);

    pm.write64(a, 123);
    pm.freeFrame(a);
    const PhysAddr c = pm.allocFrame(); // recycles a
    EXPECT_EQ(c, a);
    EXPECT_EQ(pm.read64(c), 0u) << "recycled frame must be zeroed";
}

TEST(PhysicalMemory, FrameZeroIsNeverAllocated)
{
    PhysicalMemory pm;
    for (int i = 0; i < 64; ++i)
        EXPECT_NE(pm.allocFrame(), 0u);
}

TEST(PhysicalMemory, ContiguousAllocationSpansPages)
{
    PhysicalMemory pm;
    const PhysAddr a = pm.allocContiguous(3 * kPageSize + 1);
    EXPECT_TRUE(isPageAligned(a));
    EXPECT_EQ(pm.allocatedFrames(), 4u);
    // Whole run is writable and readable.
    std::vector<u8> buf(3 * kPageSize + 1, 0x5a);
    pm.write(a, buf.data(), buf.size());
    std::vector<u8> out(buf.size());
    pm.read(a, out.data(), out.size());
    EXPECT_EQ(buf, out);
}

TEST(PhysicalMemoryDeathTest, OutOfRangeAccessPanics)
{
    PhysicalMemory pm(1 << 20); // 1 MB
    EXPECT_DEATH(pm.write64(2 << 20, 1), "out of range");
    u64 v;
    EXPECT_DEATH(pm.read((2 << 20), &v, 8), "out of range");
}

TEST(PhysicalMemoryDeathTest, ExhaustionPanics)
{
    PhysicalMemory pm(4 * kPageSize);
    pm.allocFrame();
    pm.allocFrame();
    pm.allocFrame(); // frames 1..3 (0 reserved)
    EXPECT_DEATH(pm.allocFrame(), "exhausted");
}

TEST(PhysicalMemoryDeathTest, UnalignedFreePanics)
{
    PhysicalMemory pm;
    pm.allocFrame();
    EXPECT_DEATH(pm.freeFrame(123), "unaligned");
}

} // namespace
} // namespace rio::mem
