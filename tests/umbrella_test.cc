/**
 * @file
 * Compile-and-smoke test for the public umbrella header: every
 * subsystem is reachable through rio.h and basic end-to-end use
 * works.
 */
#include <gtest/gtest.h>

#include "rio.h"

namespace {

TEST(Umbrella, EndToEndSmoke)
{
    rio::dma::DmaContext ctx;
    rio::cycles::CycleAccount acct;
    auto handle = ctx.makeHandle(rio::dma::ProtectionMode::kRiommu,
                                 rio::iommu::Bdf{0, 1, 0}, &acct, {8});
    const rio::PhysAddr pa = ctx.memory().allocFrame();
    auto m = handle->map(0, pa, 64, rio::iommu::DmaDir::kBidir);
    ASSERT_TRUE(m.isOk());
    rio::u64 v = 42;
    EXPECT_TRUE(handle->deviceWrite(m.value().device_addr, &v, 8).isOk());
    EXPECT_TRUE(handle->unmap(m.value(), true).isOk());
    EXPECT_EQ(ctx.memory().read64(pa), 42u);
}

} // namespace
