/**
 * @file
 * Tests for the deterministic virtual-time spinlock: queued-acquire
 * semantics between two cores, zero-cost uncontended and single-core
 * paths, bit-identical contention across reruns of the same two-core
 * workload, and the headline property that the rIOMMU modes take no
 * locks at all (zero lock-wait cycles on any core count).
 */
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "cycles/cycle_account.h"
#include "des/core.h"
#include "des/parallel.h"
#include "des/simulator.h"
#include "des/spinlock.h"
#include "nic/profile.h"
#include "workloads/scaling.h"

namespace rio::des {
namespace {

using cycles::Cat;

class SpinlockTest : public ::testing::Test
{
  protected:
    cycles::CostModel cost_ = cycles::defaultCostModel();
    Simulator sim_;
    Core a_{sim_, cost_};
    Core b_{sim_, cost_};
    SimSpinlock lock_{cost_, "test"};
};

TEST_F(SpinlockTest, UncontendedAcquireIsFree)
{
    Cycles waited = ~Cycles{0};
    a_.post([&] {
        waited = lock_.acquire(&a_, &a_.acct());
        a_.acct().charge(Cat::kProcessing, 500);
        lock_.release(&a_);
    });
    sim_.run();
    EXPECT_EQ(waited, 0u);
    EXPECT_EQ(a_.acct().get(Cat::kLockWait), 0u);
    EXPECT_EQ(lock_.stats().acquisitions, 1u);
    EXPECT_EQ(lock_.stats().contended, 0u);
}

TEST_F(SpinlockTest, SecondCoreSpinsForTheOverlap)
{
    // Both items start at sim time 0; A runs first (FIFO) and holds
    // the lock for 1000 cycles of virtual time. B's item also starts
    // at t=0, so its acquire overlaps A's critical section and must
    // spin for the full 1000 cycles.
    constexpr Cycles kHold = 1000;
    a_.post([&] {
        lock_.acquire(&a_, &a_.acct());
        a_.acct().charge(Cat::kProcessing, kHold);
        lock_.release(&a_);
    });
    Cycles waited = 0;
    b_.post([&] {
        waited = lock_.acquire(&b_, &b_.acct());
        lock_.release(&b_);
    });
    sim_.run();
    // The ns<->cycles round trip (integer ns, ceil back to cycles)
    // may shave or add a few cycles.
    EXPECT_GE(waited, kHold - 4);
    EXPECT_LE(waited, kHold + 1);
    EXPECT_EQ(b_.acct().get(Cat::kLockWait), waited);
    EXPECT_EQ(a_.acct().get(Cat::kLockWait), 0u);
    EXPECT_EQ(lock_.stats().contended, 1u);
    EXPECT_EQ(lock_.stats().wait_cycles, waited);
}

TEST_F(SpinlockTest, WaitAdvancesVirtualNowToGrantTime)
{
    constexpr Cycles kHold = 3100; // 1 us at 3.1 GHz
    Nanos release_at = 0, grant_at = 0;
    a_.post([&] {
        lock_.acquire(&a_, &a_.acct());
        a_.acct().charge(Cat::kProcessing, kHold);
        release_at = a_.virtualNow();
        lock_.release(&a_);
    });
    b_.post([&] {
        lock_.acquire(&b_, &b_.acct());
        grant_at = b_.virtualNow();
        lock_.release(&b_);
    });
    sim_.run();
    EXPECT_GE(grant_at, release_at);
    EXPECT_LE(grant_at - release_at, 1u); // rounding slack
}

TEST_F(SpinlockTest, DisjointCriticalSectionsNeverSpin)
{
    a_.post([&] {
        lock_.acquire(&a_, &a_.acct());
        a_.acct().charge(Cat::kProcessing, 100);
        lock_.release(&a_);
    });
    // B's item starts only after A's critical section is long over.
    sim_.scheduleAt(1000000, [&] {
        b_.post([&] {
            Cycles w = lock_.acquire(&b_, &b_.acct());
            EXPECT_EQ(w, 0u);
            lock_.release(&b_);
        });
    });
    sim_.run();
    EXPECT_EQ(lock_.stats().contended, 0u);
    EXPECT_EQ(b_.acct().get(Cat::kLockWait), 0u);
}

TEST_F(SpinlockTest, NullCoreAcquiresInstantly)
{
    EXPECT_EQ(lock_.acquire(nullptr, nullptr), 0u);
    lock_.release(nullptr);
    EXPECT_EQ(lock_.stats().acquisitions, 1u);
    EXPECT_EQ(lock_.stats().contended, 0u);
}

TEST_F(SpinlockTest, NullGuardIsANoOp)
{
    SpinGuard guard(nullptr, &a_, &a_.acct());
    SUCCEED();
}

// --- Engine lanes: contention replay across thread counts ---------

/** One two-core contention scene on one lane's simulator. */
struct LockScenario
{
    struct Outcome
    {
        Cycles waited = 0;
        u64 acquisitions = 0, contended = 0;
        Cycles wait_cycles = 0;

        bool
        operator==(const Outcome &o) const
        {
            return waited == o.waited &&
                   acquisitions == o.acquisitions &&
                   contended == o.contended &&
                   wait_cycles == o.wait_cycles;
        }
    };

    cycles::CostModel cost = cycles::defaultCostModel();
    Core a, b;
    SimSpinlock lock;
    Outcome out;

    LockScenario(Simulator &sim, Cycles hold)
        : a(sim, cost), b(sim, cost), lock(cost, "lane")
    {
        a.post([this, hold] {
            lock.acquire(&a, &a.acct());
            a.acct().charge(Cat::kProcessing, hold);
            lock.release(&a);
        });
        b.post([this] {
            out.waited = lock.acquire(&b, &b.acct());
            lock.release(&b);
        });
    }

    Outcome
    finish()
    {
        out.acquisitions = lock.stats().acquisitions;
        out.contended = lock.stats().contended;
        out.wait_cycles = lock.stats().wait_cycles;
        return out;
    }
};

TEST(SpinlockParallelTest, LaneContentionIsBitIdenticalAcrossThreads)
{
    // Four lanes with different hold times: the virtual-time lock's
    // spin accounting is part of the simulation, so running the lanes
    // on worker threads must not move a single cycle.
    constexpr std::array<Cycles, 4> kHolds = {500, 1000, 3100, 50};
    const auto run = [&](unsigned threads) {
        ParallelEngine eng(threads);
        std::vector<std::unique_ptr<LockScenario>> scenes;
        for (const Cycles hold : kHolds)
            scenes.push_back(
                std::make_unique<LockScenario>(eng.addLane().sim(), hold));
        eng.run();
        std::vector<LockScenario::Outcome> outs;
        for (auto &s : scenes)
            outs.push_back(s->finish());
        return outs;
    };
    const auto seq = run(1);
    const auto par = run(2);
    ASSERT_EQ(seq.size(), par.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        EXPECT_TRUE(seq[i] == par[i]) << "lane " << i;
        // And the contention is real on every lane, not trivially 0.
        EXPECT_EQ(seq[i].acquisitions, 2u);
        EXPECT_EQ(seq[i].contended, 1u);
        EXPECT_GT(seq[i].waited, 0u);
    }
}

// --- Workload-level determinism -----------------------------------

workloads::StreamParams
quickParams()
{
    workloads::StreamParams p =
        workloads::streamParamsFor(nic::mlxProfile());
    p.measure_packets = 2000;
    p.warmup_packets = 500;
    return p;
}

TEST(SpinlockDeterminismTest, TwoContendingCoresAreBitIdentical)
{
    const auto run = [] {
        return workloads::runStreamScaling(dma::ProtectionMode::kStrict,
                                           nic::mlxProfile(), 2,
                                           quickParams());
    };
    const workloads::ScalingResult r1 = run();
    const workloads::ScalingResult r2 = run();

    // The whole point of the virtual-time lock: contention is part of
    // the deterministic simulation, so reruns agree bit for bit.
    EXPECT_GT(r1.lock_wait_per_packet, 0.0);
    EXPECT_EQ(r1.tx_packets, r2.tx_packets);
    EXPECT_EQ(r1.cycles_per_packet, r2.cycles_per_packet);
    EXPECT_EQ(r1.lock_wait_per_packet, r2.lock_wait_per_packet);
    EXPECT_EQ(r1.iova_lock.acquisitions, r2.iova_lock.acquisitions);
    EXPECT_EQ(r1.iova_lock.contended, r2.iova_lock.contended);
    EXPECT_EQ(r1.iova_lock.wait_cycles, r2.iova_lock.wait_cycles);
    EXPECT_EQ(r1.inval_lock.wait_cycles, r2.inval_lock.wait_cycles);
    ASSERT_EQ(r1.per_flow.size(), r2.per_flow.size());
    for (size_t i = 0; i < r1.per_flow.size(); ++i) {
        EXPECT_EQ(r1.per_flow[i].acct.get(Cat::kLockWait),
                  r2.per_flow[i].acct.get(Cat::kLockWait));
        EXPECT_EQ(r1.per_flow[i].tx_packets, r2.per_flow[i].tx_packets);
    }
}

TEST(SpinlockDeterminismTest, ContentionGrowsWithCores)
{
    const workloads::StreamParams p = quickParams();
    const auto r2 = workloads::runStreamScaling(
        dma::ProtectionMode::kStrict, nic::mlxProfile(), 2, p);
    const auto r4 = workloads::runStreamScaling(
        dma::ProtectionMode::kStrict, nic::mlxProfile(), 4, p);
    EXPECT_GT(r2.lock_wait_per_packet, 0.0);
    EXPECT_GT(r4.lock_wait_per_packet, r2.lock_wait_per_packet);
    EXPECT_GT(r4.cycles_per_packet, r2.cycles_per_packet);
}

TEST(SpinlockDeterminismTest, RiommuTakesNoLocks)
{
    const workloads::StreamParams p = quickParams();
    for (dma::ProtectionMode mode :
         {dma::ProtectionMode::kRiommu, dma::ProtectionMode::kRiommuNc}) {
        const auto r = workloads::runStreamScaling(
            mode, nic::mlxProfile(), 2, p);
        EXPECT_EQ(r.lock_wait_per_packet, 0.0)
            << dma::modeName(mode);
        EXPECT_EQ(r.iova_lock.acquisitions, 0u) << dma::modeName(mode);
        EXPECT_EQ(r.inval_lock.acquisitions, 0u) << dma::modeName(mode);
        for (const auto &flow : r.per_flow)
            EXPECT_EQ(flow.acct.get(Cat::kLockWait), 0u)
                << dma::modeName(mode);
    }
}

TEST(SpinlockDeterminismTest, RrScalingContendsAndIsDeterministic)
{
    workloads::RrParams p = workloads::rrParamsFor(nic::mlxProfile());
    p.measure_transactions = 400;
    p.warmup_transactions = 50;
    const auto run = [&] {
        return workloads::runRrScaling(dma::ProtectionMode::kStrict,
                                       nic::mlxProfile(), 2, p);
    };
    const workloads::ScalingResult r1 = run();
    const workloads::ScalingResult r2 = run();
    EXPECT_EQ(r1.per_flow.size(), 2u);
    EXPECT_GT(r1.iova_lock.acquisitions, 0u);
    EXPECT_EQ(r1.cycles_per_packet, r2.cycles_per_packet);
    EXPECT_EQ(r1.lock_wait_per_packet, r2.lock_wait_per_packet);
    EXPECT_EQ(r1.iova_lock.wait_cycles, r2.iova_lock.wait_cycles);

    const auto rio = workloads::runRrScaling(
        dma::ProtectionMode::kRiommu, nic::mlxProfile(), 2, p);
    EXPECT_EQ(rio.lock_wait_per_packet, 0.0);
    EXPECT_EQ(rio.iova_lock.acquisitions, 0u);
}

TEST(SpinlockDeterminismTest, SingleCoreNeverWaits)
{
    // One core can never overlap itself: the N-core machinery with
    // ncores = 1 must charge exactly zero lock-wait cycles, which is
    // what keeps the seed's single-core results bit-for-bit intact.
    const auto r = workloads::runStreamScaling(
        dma::ProtectionMode::kStrict, nic::mlxProfile(), 1,
        quickParams());
    EXPECT_GT(r.iova_lock.acquisitions, 0u);
    EXPECT_EQ(r.iova_lock.contended, 0u);
    EXPECT_EQ(r.inval_lock.contended, 0u);
    EXPECT_EQ(r.lock_wait_per_packet, 0.0);
}

} // namespace
} // namespace rio::des
