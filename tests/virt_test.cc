/**
 * @file
 * Virtualization subsystem tests (DESIGN.md §10): the 2-D nested-walk
 * reference counts the PR's acceptance pins (24 combined references
 * for a 4-level radix miss, at most 5 for an rIOMMU flat-table miss),
 * vmexit cost composition and per-reason accounting for the emulated /
 * shadow / nested strategies, rIOMMU's boot-time registration
 * hypercalls followed by a trap-free data path, shadow-table
 * mirroring, stage-2 identity correctness on the DMA data path,
 * platform orderings on the quick stream workload (bare < nested <
 * emulated < shadow for the baselines; the strict-vs-rIOMMU advantage
 * strictly larger nested than bare), deterministic replay inside a
 * guest, composition with fault injection + lifecycle churn, leak-free
 * quiesce/unplug under every strategy, per-level walk counters
 * (observability satellite), and vmexit timeline spans.
 */
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "dma/baseline_handle.h"
#include "dma/dma_context.h"
#include "dma/riommu_handle.h"
#include "net/packet.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "riommu/structures.h"
#include "sys/machine.h"
#include "virt/guest.h"
#include "workloads/netperf_rr.h"
#include "workloads/stream.h"

namespace rio {
namespace {

using dma::ProtectionMode;
using iommu::Access;
using iommu::DmaDir;
using cycles::Cat;
using virt::ExitReason;
using virt::Platform;

nic::NicProfile
testProfile()
{
    nic::NicProfile p; // small rings, 1 buffer/packet for fast tests
    p.name = "test";
    p.tx_buffers_per_packet = 1;
    p.rx_rings = 1;
    p.rx_ring_entries = 16;
    p.tx_ring_entries = 512;
    p.tx_completion_batch = 16;
    p.tx_irq_delay_ns = 5000;
    p.rx_irq_delay_ns = 1000;
    return p;
}

net::Packet
mappedPacket()
{
    net::Packet pkt;
    pkt.payload_bytes = 1000; // above the inline threshold: maps
    return pkt;
}

workloads::StreamParams
quickStream()
{
    workloads::StreamParams p =
        workloads::streamParamsFor(nic::mlxProfile());
    p.measure_packets = 2000;
    p.warmup_packets = 500;
    return p;
}

// ---- platform vocabulary ----------------------------------------------------

TEST(VirtPlatform, NamesRoundTripAndBareIsFirst)
{
    for (Platform p : virt::kAllPlatforms) {
        const auto parsed = virt::parsePlatform(virt::platformName(p));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, p);
    }
    EXPECT_EQ(virt::kAllPlatforms.front(), Platform::kBare);
    EXPECT_FALSE(virt::parsePlatform("xen").has_value());
}

TEST(VirtPlatform, ExitCostsComposeFromCostModel)
{
    const cycles::CostModel &cm = cycles::defaultCostModel();
    virt::VmExitModel em(cm);
    EXPECT_EQ(em.cost(ExitReason::kVregWrite),
              cm.vmexit_roundtrip + cm.hyp_dispatch + cm.vreg_emulate +
                  cm.inval_replay);
    EXPECT_EQ(em.cost(ExitReason::kQiDoorbell),
              em.cost(ExitReason::kVregWrite));
    EXPECT_EQ(em.cost(ExitReason::kQiForward),
              cm.vmexit_roundtrip + cm.hyp_dispatch +
                  cm.inval_replay_nested);
    EXPECT_EQ(em.cost(ExitReason::kPteWriteProtect),
              cm.vmexit_roundtrip + cm.hyp_dispatch + cm.shadow_sync);
    EXPECT_EQ(em.cost(ExitReason::kHypercall), cm.hypercall);
    // Forwarding a nested doorbell must be far cheaper than replaying
    // one through the device model, or nested loses its point.
    EXPECT_LT(em.cost(ExitReason::kQiForward),
              em.cost(ExitReason::kQiDoorbell));
}

// ---- the 2-D walk reference counts (acceptance pins) ------------------------

TEST(VirtNestedWalk, RadixMissCostsExactly24CombinedReferences)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, Platform::kNested);

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());

    auto tr = m.ctx().iommu().translate(
        m.handle().bdf(), mapping.value().device_addr, Access::kRead);
    ASSERT_TRUE(tr.isOk());
    EXPECT_FALSE(tr.value().iotlb_hit);
    EXPECT_EQ(tr.value().walk_levels, 4);
    // 4 guest levels x (4 stage-2 refs per table address + the table
    // read itself) + 4 stage-2 refs for the data page = 24.
    EXPECT_EQ(tr.value().mem_refs, 24);
    // Identity stage-2: same physical address as a bare walk.
    EXPECT_EQ(tr.value().pa,
              buf + (mapping.value().device_addr & kPageMask));

    // The IOTLB caches the *combined* translation: a hit re-reads
    // nothing, not even stage-2.
    auto hit = m.ctx().iommu().translate(
        m.handle().bdf(), mapping.value().device_addr, Access::kRead);
    ASSERT_TRUE(hit.isOk());
    EXPECT_TRUE(hit.value().iotlb_hit);
    EXPECT_EQ(hit.value().mem_refs, 0);
    EXPECT_EQ(hit.value().pa, tr.value().pa);

    // The miss lazily populated the stage-2 hierarchy.
    EXPECT_GT(guest.stats().stage2_fills, 0u);
    EXPECT_EQ(guest.stats().stage2_pages, guest.stats().stage2_fills);

    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
}

TEST(VirtNestedWalk, RiommuFlatMissCostsAtMostFiveReferences)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kRiommu, testProfile());
    virt::Guest guest(m, Platform::kNested);

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());

    auto tr = m.ctx().riommu().translate(
        m.handle().bdf(), riommu::RIova{mapping.value().device_addr},
        Access::kRead, 1);
    ASSERT_TRUE(tr.isOk());
    EXPECT_FALSE(tr.value().riotlb_hit);
    // 1 rPTE fetch (rDEVICE/rRING descriptors were pinned by the
    // registration hypercalls) + 4 stage-2 refs for the data page.
    EXPECT_LE(tr.value().mem_refs, 5);
    EXPECT_EQ(tr.value().mem_refs, 5);
    EXPECT_EQ(tr.value().pa, buf);

    auto hit = m.ctx().riommu().translate(
        m.handle().bdf(), riommu::RIova{mapping.value().device_addr},
        Access::kRead, 1);
    ASSERT_TRUE(hit.isOk());
    EXPECT_TRUE(hit.value().riotlb_hit);
    EXPECT_EQ(hit.value().mem_refs, 0);

    (void)guest;
    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
}

TEST(VirtNestedWalk, HugeStage2CutsRadixMissTo19CombinedReferences)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, Platform::kNested);
    guest.setHugeStage2(true);

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());

    auto tr = m.ctx().iommu().translate(
        m.handle().bdf(), mapping.value().device_addr, Access::kRead);
    ASSERT_TRUE(tr.isOk());
    EXPECT_FALSE(tr.value().iotlb_hit);
    EXPECT_EQ(tr.value().walk_levels, 4);
    // 2 MB stage-2 leaves stop every stage-2 resolution one level
    // early: 4 guest levels x (3 stage-2 refs + the table read) + 3
    // stage-2 refs for the data page = 19 (vs 24 with 4K stage-2).
    EXPECT_EQ(tr.value().mem_refs, 19);
    // Identity stage-2 even through a huge leaf: 2 MB offset
    // composition must reproduce the bare physical address.
    EXPECT_EQ(tr.value().pa,
              buf + (mapping.value().device_addr & kPageMask));
    EXPECT_GT(guest.stage2().hugeMappings(), 0u);

    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
}

TEST(VirtNestedWalk, HugeStage2CutsRiommuFlatMissToFourReferences)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kRiommu, testProfile());
    virt::Guest guest(m, Platform::kNested);
    guest.setHugeStage2(true);

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());

    auto tr = m.ctx().riommu().translate(
        m.handle().bdf(), riommu::RIova{mapping.value().device_addr},
        Access::kRead, 1);
    ASSERT_TRUE(tr.isOk());
    EXPECT_FALSE(tr.value().riotlb_hit);
    // 1 rPTE fetch + 3 stage-2 refs for the data page = 4: a nested
    // rIOMMU miss now costs the same as a *bare* radix miss.
    EXPECT_EQ(tr.value().mem_refs, 4);
    EXPECT_EQ(tr.value().pa, buf);

    (void)guest;
    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
}

TEST(VirtNestedWalk, Stage1SuperpagesCutRadixMissTo19References)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, Platform::kNested);
    m.handle().setStage1Superpages(true);

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());

    auto tr = m.ctx().iommu().translate(
        m.handle().bdf(), mapping.value().device_addr, Access::kRead);
    ASSERT_TRUE(tr.isOk());
    EXPECT_FALSE(tr.value().iotlb_hit);
    // The guest's own 2 MB leaf ends the stage-1 walk a level early:
    // 3 guest levels x (4 stage-2 refs + the table read) + 4 stage-2
    // refs for the data page = 19 — the same total as huge stage-2
    // over a 4K guest table, but from the other side of the 2-D walk.
    EXPECT_EQ(tr.value().walk_levels, 3);
    EXPECT_EQ(tr.value().mem_refs, 19);
    // 2 MB stage-1 offset composition through identity stage-2.
    EXPECT_EQ(tr.value().pa,
              buf + (mapping.value().device_addr & kPageMask));

    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
}

TEST(VirtNestedWalk, SuperpagesBothStagesReachThe15ReferenceIdeal)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, Platform::kNested);
    guest.setHugeStage2(true);
    m.handle().setStage1Superpages(true);

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());

    auto tr = m.ctx().iommu().translate(
        m.handle().bdf(), mapping.value().device_addr, Access::kRead);
    ASSERT_TRUE(tr.isOk());
    EXPECT_FALSE(tr.value().iotlb_hit);
    // Huge leaves on both stages: 3 guest levels x (3 stage-2 refs +
    // the table read) + 3 stage-2 refs for the data page = 15, the
    // ROADMAP's nested-walk ideal for the radix baseline. (rIOMMU's
    // flat table sits at 4 under huge stage-2 regardless.)
    EXPECT_EQ(tr.value().walk_levels, 3);
    EXPECT_EQ(tr.value().mem_refs, 15);
    EXPECT_EQ(tr.value().pa,
              buf + (mapping.value().device_addr & kPageMask));
    EXPECT_GT(guest.stage2().hugeMappings(), 0u);

    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
}

TEST(VirtNestedWalk, BareWalkIsOneReferencePerLevelAndChargesNoVirt)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    // No Guest: bare metal.
    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());
    auto tr = m.ctx().iommu().translate(
        m.handle().bdf(), mapping.value().device_addr, Access::kRead);
    ASSERT_TRUE(tr.isOk());
    EXPECT_EQ(tr.value().walk_levels, 4);
    EXPECT_EQ(tr.value().mem_refs, 4);
    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
    EXPECT_EQ(m.acct().get(Cat::kVirt), 0u);
    EXPECT_EQ(m.acct().ops(Cat::kVirt), 0u);
}

// ---- emulated strategy ------------------------------------------------------

TEST(VirtEmulated, RadixInstallAndDoorbellTrap)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, Platform::kEmulated);
    virt::VmExitModel &em = guest.exitModel();
    ASSERT_EQ(em.exits(), 0u); // baseline vIOMMU needs no boot traps

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());
    // Caching-mode install: exactly one vreg-write exit, no doorbell.
    EXPECT_EQ(em.exits(ExitReason::kVregWrite), 1u);
    EXPECT_EQ(em.exits(ExitReason::kQiDoorbell), 0u);
    EXPECT_EQ(m.acct().get(Cat::kVirt), em.cost(ExitReason::kVregWrite));

    // Strict unmap: the PTE clear does NOT re-trap (teardown cost is
    // the doorbell, trapped once — no double counting).
    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
    EXPECT_EQ(em.exits(ExitReason::kVregWrite), 1u);
    EXPECT_EQ(em.exits(ExitReason::kQiDoorbell), 1u);
    EXPECT_EQ(m.acct().get(Cat::kVirt),
              em.cost(ExitReason::kVregWrite) +
                  em.cost(ExitReason::kQiDoorbell));
    EXPECT_EQ(m.acct().ops(Cat::kVirt), 2u);
    EXPECT_EQ(guest.stats().vm_exits, 2u);
}

TEST(VirtEmulated, DeferredInvalidationBatchesDoorbellExits)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kDefer, testProfile());
    virt::Guest guest(m, Platform::kEmulated);

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());
    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
    // Deferred mode queues the invalidation; until the batch flushes
    // there is no doorbell MMIO, hence no doorbell exit — exactly why
    // defer recovers part of the virtualization tax too.
    EXPECT_EQ(guest.exitModel().exits(ExitReason::kVregWrite), 1u);
    EXPECT_EQ(guest.exitModel().exits(ExitReason::kQiDoorbell), 0u);
}

TEST(VirtEmulated, RiommuPaysRegistrationHypercallsThenNeverTraps)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kRiommu, testProfile());
    virt::Guest guest(m, Platform::kEmulated);
    virt::VmExitModel &em = guest.exitModel();

    auto &rh = dynamic_cast<dma::RiommuDmaHandle &>(m.handle());
    const u64 expected = 1u + rh.rdevice().nrings();
    EXPECT_EQ(guest.stats().hypercalls, expected);
    EXPECT_EQ(em.exits(ExitReason::kHypercall), expected);
    EXPECT_EQ(em.exits(), expected);
    EXPECT_EQ(m.acct().get(Cat::kVirt),
              expected * em.cost(ExitReason::kHypercall));

    // The memory-only protocol: a whole map/unmap burst adds nothing.
    const u64 virt_before = m.acct().get(Cat::kVirt);
    for (int i = 0; i < 32; ++i) {
        const PhysAddr buf = m.ctx().memory().allocFrame();
        auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
        ASSERT_TRUE(mapping.isOk());
        ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
    }
    EXPECT_EQ(em.exits(), expected);
    EXPECT_EQ(m.acct().get(Cat::kVirt), virt_before);
}

// ---- shadow strategy --------------------------------------------------------

TEST(VirtShadow, MirrorsRadixTableAndCountsSyncs)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, Platform::kShadow);
    virt::VmExitModel &em = guest.exitModel();
    ASSERT_NE(guest.shadowTable(0), nullptr);

    auto &bh = dynamic_cast<dma::BaselineDmaHandle &>(m.handle());
    std::vector<dma::DmaMapping> mappings;
    for (int i = 0; i < 3; ++i) {
        const PhysAddr buf = m.ctx().memory().allocFrame();
        auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
        ASSERT_TRUE(mapping.isOk());
        mappings.push_back(mapping.value());
    }
    EXPECT_EQ(em.exits(ExitReason::kPteWriteProtect), 3u);
    ASSERT_TRUE(m.handle().unmap(mappings.back(), true).isOk());
    mappings.pop_back();

    // Every table store trapped: 3 installs + 1 clear. The unmap's
    // QI doorbell is a separate full-replay exit.
    EXPECT_EQ(em.exits(ExitReason::kPteWriteProtect), 4u);
    EXPECT_EQ(em.exits(ExitReason::kQiDoorbell), 1u);
    EXPECT_EQ(guest.stats().shadow_syncs, 4u);

    // The merged shadow tracks the guest table exactly.
    EXPECT_EQ(guest.shadowTable(0)->mappedPages(),
              bh.pageTable().mappedPages());
    EXPECT_EQ(guest.shadowTable(0)->mappedPages(), 2u);

    for (const auto &mp : mappings)
        ASSERT_TRUE(m.handle().unmap(mp, true).isOk());
    EXPECT_EQ(guest.shadowTable(0)->mappedPages(), 0u);
}

TEST(VirtShadow, TrapsRpteStoresWithoutParavirt)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kRiommu, testProfile());
    virt::Guest guest(m, Platform::kShadow);
    virt::VmExitModel &em = guest.exitModel();

    // Shadow does not paravirtualize: no registration hypercalls...
    EXPECT_EQ(guest.stats().hypercalls, 0u);
    EXPECT_EQ(em.exits(), 0u);
    // ...but every rPTE store is a write-protect trap, so rIOMMU's
    // memory-only advantage is destroyed — the one strategy where it
    // pays per packet.
    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());
    EXPECT_EQ(em.exits(ExitReason::kPteWriteProtect), 1u);
    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
    EXPECT_EQ(em.exits(ExitReason::kPteWriteProtect), 2u);
    EXPECT_EQ(em.exits(), 2u);
    // An rIOMMU handle has no radix shadow to expose.
    EXPECT_EQ(guest.shadowTable(0), nullptr);
}

// ---- nested strategy --------------------------------------------------------

TEST(VirtNested, OnlyTheDoorbellForwards)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, Platform::kNested);
    virt::VmExitModel &em = guest.exitModel();

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());
    // Hardware walks the guest table: the install does not trap.
    EXPECT_EQ(em.exits(), 0u);
    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
    EXPECT_EQ(em.exits(ExitReason::kQiForward), 1u);
    EXPECT_EQ(em.exits(ExitReason::kQiDoorbell), 0u);
    EXPECT_EQ(em.exits(ExitReason::kVregWrite), 0u);
    EXPECT_EQ(m.acct().get(Cat::kVirt), em.cost(ExitReason::kQiForward));
}

TEST(VirtNested, IdentityStage2PreservesTheDataPath)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, Platform::kNested);

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 256, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());
    const u64 v = 0x1122334455667788ull;
    ASSERT_TRUE(m.handle()
                    .deviceWrite(mapping.value().device_addr, &v, 8)
                    .isOk());
    EXPECT_EQ(m.ctx().memory().read64(buf), v);
    u64 back = 0;
    ASSERT_TRUE(m.handle()
                    .deviceRead(mapping.value().device_addr, &back, 8)
                    .isOk());
    EXPECT_EQ(back, v);
    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
    (void)guest;
}

// ---- per-level walk counters (observability satellite) ----------------------

TEST(VirtObservability, PerLevelWalkCountersCountMissesNotHits)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());

    std::array<const obs::Counter *, 4> level{};
    std::array<u64, 4> before{};
    for (int l = 1; l <= 4; ++l) {
        level[l - 1] = &obs::registry().counter(
            "iommu.pt_walk.level_reads",
            {{"level", std::to_string(l)}});
        before[l - 1] = level[l - 1]->value;
    }

    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());
    auto tr = m.ctx().iommu().translate(
        m.handle().bdf(), mapping.value().device_addr, Access::kRead);
    ASSERT_TRUE(tr.isOk());
    // One table read per level on the miss...
    for (int l = 0; l < 4; ++l)
        EXPECT_EQ(level[l]->value, before[l] + 1) << "level " << l + 1;
    // ...and none on the IOTLB hit.
    auto hit = m.ctx().iommu().translate(
        m.handle().bdf(), mapping.value().device_addr, Access::kRead);
    ASSERT_TRUE(hit.isOk() && hit.value().iotlb_hit);
    for (int l = 0; l < 4; ++l)
        EXPECT_EQ(level[l]->value, before[l] + 1) << "level " << l + 1;
    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());
}

TEST(VirtObservability, VmExitRegistryCountersAndTimelineSpans)
{
    obs::timeline().setRecording(true);
    obs::timeline().clear();

    const obs::Counter &vreg = obs::registry().counter(
        "virt.vm_exits", {{"reason", "vreg_write"}});
    const u64 vreg_before = vreg.value;

    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, Platform::kEmulated);
    const PhysAddr buf = m.ctx().memory().allocFrame();
    auto mapping = m.handle().map(0, buf, 1000, DmaDir::kBidir);
    ASSERT_TRUE(mapping.isOk());
    ASSERT_TRUE(m.handle().unmap(mapping.value(), true).isOk());

    EXPECT_EQ(vreg.value, vreg_before + 1);

    // Both exits appear as spans on the core's timeline track, with a
    // duration and the reason in arg.
    unsigned vmexit_spans = 0;
    for (const auto &[track, events] : obs::timeline().tracks()) {
        for (const obs::Event &e : events) {
            if (e.kind != obs::Ev::kVmExit)
                continue;
            ++vmexit_spans;
            EXPECT_GT(e.dur_ns, 0u);
            EXPECT_LT(e.arg, virt::kNumExitReasons);
        }
    }
    EXPECT_EQ(vmexit_spans, 2u);

    obs::timeline().setRecording(false);
    obs::timeline().clear();
    (void)guest;
}

// ---- workload-level orderings (acceptance) ----------------------------------

TEST(VirtStream, BaselineOrderingAndAdvantageGrowsUnderNested)
{
    workloads::StreamParams p = quickStream();
    const auto profile = nic::mlxProfile();

    auto run = [&](ProtectionMode mode, Platform platform) {
        workloads::StreamParams q = p;
        q.platform = platform;
        return workloads::runStream(mode, profile, q);
    };

    const auto strict_bare = run(ProtectionMode::kStrict, Platform::kBare);
    const auto strict_emul =
        run(ProtectionMode::kStrict, Platform::kEmulated);
    const auto strict_shadow =
        run(ProtectionMode::kStrict, Platform::kShadow);
    const auto strict_nested =
        run(ProtectionMode::kStrict, Platform::kNested);
    const auto rio_bare = run(ProtectionMode::kRiommu, Platform::kBare);
    const auto rio_nested =
        run(ProtectionMode::kRiommu, Platform::kNested);

    // Baseline platform ordering: hardware 2-D walks are cheaper than
    // trap-and-emulate, which is cheaper than trapping every store.
    EXPECT_LT(strict_bare.cycles_per_packet,
              strict_nested.cycles_per_packet);
    EXPECT_LT(strict_nested.cycles_per_packet,
              strict_emul.cycles_per_packet);
    EXPECT_LT(strict_emul.cycles_per_packet,
              strict_shadow.cycles_per_packet);

    // vm_exits are reported per window: zero on bare metal, present
    // on every guest platform for the baseline.
    EXPECT_EQ(strict_bare.vm_exits, 0u);
    EXPECT_GT(strict_emul.vm_exits, 0u);
    EXPECT_GT(strict_shadow.vm_exits, 0u);
    EXPECT_GT(strict_nested.vm_exits, 0u);

    // rIOMMU's driver path never exits after boot: the measurement
    // window is bit-identical to bare metal under nested.
    EXPECT_EQ(rio_nested.vm_exits, 0u);
    EXPECT_EQ(rio_nested.acct.total(), rio_bare.acct.total());
    EXPECT_EQ(rio_nested.cycles_per_packet, rio_bare.cycles_per_packet);

    // The paper-plus-virtualization headline: rIOMMU's advantage over
    // strict is strictly LARGER inside a nested guest than on bare
    // metal.
    const double adv_bare =
        strict_bare.cycles_per_packet - rio_bare.cycles_per_packet;
    const double adv_nested =
        strict_nested.cycles_per_packet - rio_nested.cycles_per_packet;
    EXPECT_GT(adv_nested, adv_bare);
}

TEST(VirtStream, DeterministicReplayInsideAGuest)
{
    workloads::StreamParams p = quickStream();
    p.measure_packets = 1000;
    p.warmup_packets = 200;
    for (Platform platform : {Platform::kEmulated, Platform::kNested}) {
        p.platform = platform;
        const auto a = workloads::runStream(ProtectionMode::kStrict,
                                            nic::mlxProfile(), p);
        const auto b = workloads::runStream(ProtectionMode::kStrict,
                                            nic::mlxProfile(), p);
        EXPECT_EQ(a.acct.total(), b.acct.total())
            << virt::platformName(platform);
        EXPECT_EQ(a.vm_exits, b.vm_exits)
            << virt::platformName(platform);
        EXPECT_EQ(a.cycles_per_packet, b.cycles_per_packet)
            << virt::platformName(platform);
    }
}

TEST(VirtStream, ComposesWithFaultInjectionAndLifecycleChurn)
{
    workloads::StreamParams p = quickStream();
    p.measure_packets = 1500;
    p.warmup_packets = 300;
    p.platform = Platform::kEmulated;
    p.fault_rate = 0.0005;
    p.fault_seed = 7;
    p.churn_per_ms = 0.2;
    p.churn_seed = 11;

    const auto a = workloads::runStream(ProtectionMode::kStrict,
                                        nic::mlxProfile(), p);
    EXPECT_EQ(a.tx_packets, p.measure_packets);
    EXPECT_GT(a.vm_exits, 0u);
    EXPECT_GT(a.fault.injected, 0u);

    const auto b = workloads::runStream(ProtectionMode::kStrict,
                                        nic::mlxProfile(), p);
    EXPECT_EQ(a.acct.total(), b.acct.total());
    EXPECT_EQ(a.vm_exits, b.vm_exits);
    EXPECT_EQ(a.fault.injected, b.fault.injected);
}

TEST(VirtRr, EmulatedExitsLandOnTheRtt)
{
    workloads::RrParams p = workloads::rrParamsFor(nic::mlxProfile());
    p.measure_transactions = 400;
    p.warmup_transactions = 50;

    const auto bare = workloads::runNetperfRr(ProtectionMode::kStrict,
                                              nic::mlxProfile(), p);
    p.platform = Platform::kEmulated;
    const auto emul = workloads::runNetperfRr(ProtectionMode::kStrict,
                                              nic::mlxProfile(), p);
    EXPECT_EQ(bare.vm_exits, 0u);
    EXPECT_GT(emul.vm_exits, 0u);
    // Latency-sensitive regime: every exit is on the critical path.
    EXPECT_GT(1e6 / emul.transactions_per_sec,
              1e6 / bare.transactions_per_sec);
}

// ---- lifecycle composition --------------------------------------------------

class VirtLifecycleTest : public ::testing::TestWithParam<Platform>
{
};

TEST_P(VirtLifecycleTest, QuiesceLeaksNothingInsideAGuest)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, GetParam());
    m.bringUp();
    m.core().post([&] {
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(m.nic().sendPacket(mappedPacket()).isOk());
    });
    sim.run();

    ASSERT_TRUE(m.quiesceNic(0).isOk());
    EXPECT_TRUE(m.handle().detached());
    const dma::LeakReport rep = m.ctx().checkHandleLeaks(m.handle());
    EXPECT_TRUE(rep.clean()) << rep.toString();
    (void)guest;
}

TEST_P(VirtLifecycleTest, SurpriseUnplugAndReplugStayClean)
{
    des::Simulator sim;
    sys::Machine m(sim, ProtectionMode::kStrict, testProfile());
    virt::Guest guest(m, GetParam());
    m.bringUp();
    m.core().post([&] {
        for (int i = 0; i < 6; ++i)
            ASSERT_TRUE(m.nic().sendPacket(mappedPacket()).isOk());
        m.surpriseUnplugNic(0);
        m.removeCleanupNic(0);
    });
    sim.run();
    EXPECT_TRUE(m.ctx().checkHandleLeaks(m.handle()).clean());

    // The trap bindings survive the replug (the handle object is
    // reused), so the guest keeps trapping afterwards.
    const u64 exits_before = guest.exitModel().exits();
    m.core().post([&] {
        m.replugNic(0);
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(m.nic().sendPacket(mappedPacket()).isOk());
    });
    sim.run();
    if (GetParam() != Platform::kNested) {
        EXPECT_GT(guest.exitModel().exits(), exits_before);
    }
    ASSERT_TRUE(m.quiesceNic(0).isOk());
    EXPECT_TRUE(m.ctx().checkHandleLeaks(m.handle()).clean());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, VirtLifecycleTest,
                         ::testing::Values(Platform::kEmulated,
                                           Platform::kShadow,
                                           Platform::kNested),
                         [](const auto &info) {
                             return std::string(
                                 virt::platformName(info.param));
                         });

// ---- handle-leak audit across modes under a guest ---------------------------

class VirtModeTest : public ::testing::TestWithParam<ProtectionMode>
{
};

TEST_P(VirtModeTest, EveryModeRunsUnmodifiedInsideAGuest)
{
    des::Simulator sim;
    sys::Machine m(sim, GetParam(), testProfile());
    virt::Guest guest(m, Platform::kEmulated);
    m.bringUp();
    m.core().post([&] {
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(m.nic().sendPacket(mappedPacket()).isOk());
    });
    sim.run();
    ASSERT_TRUE(m.quiesceNic(0).isOk());
    EXPECT_TRUE(m.ctx().checkHandleLeaks(m.handle()).clean());
    (void)guest;
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, VirtModeTest, ::testing::ValuesIn(dma::kEvaluatedModes),
    [](const auto &info) {
        // Test names must be identifiers: strict+ -> strictPlus, ...
        std::string name = dma::modeName(info.param);
        std::string out;
        for (char c : name) {
            if (c == '+')
                out += "Plus";
            else if (c == '-')
                out += "Minus";
            else
                out += c;
        }
        return out;
    });

} // namespace
} // namespace rio
