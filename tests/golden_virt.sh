#!/usr/bin/env bash
# Bit-for-bit regression for the virtualization subsystem: on the bare
# platform the virt layer must be a perfect no-op, so bench_virt
# --platform bare must reproduce the checked-in fig7 golden JSON
# (modulo the bench name line). Any diff means the guest hooks
# perturbed the bare path: a null-check turned into a charge, an extra
# RNG draw, a changed allocation order. If bench_fig7 itself changed
# intentionally, regenerate the golden:
#
#   RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 bench_fig7_cycles_per_packet \
#       --json tests/golden/fig7_quick.json
#
# Usage: golden_virt.sh <bench_virt-binary> <golden.json>
set -euo pipefail

bench="$1"
golden="$2"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

RIO_BENCH_QUICK=1 RIO_JSON_STABLE=1 "$bench" --platform bare --json "$out" > /dev/null

strip_name() { sed 's/"bench": "[^"]*"/"bench": ""/' "$1"; }

if ! diff -u <(strip_name "$golden") <(strip_name "$out"); then
    echo "golden_virt: bare platform diverged from $golden" >&2
    exit 1
fi
echo "golden_virt: bare-platform output matches $golden"
