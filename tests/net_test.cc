/**
 * @file
 * Tests for the packet/segmentation vocabulary.
 */
#include <gtest/gtest.h>

#include "net/packet.h"

namespace rio::net {
namespace {

TEST(Segmentation, CountsSegments)
{
    EXPECT_EQ(segmentsFor(0), 1u) << "a bare ACK still frames";
    EXPECT_EQ(segmentsFor(1), 1u);
    EXPECT_EQ(segmentsFor(kMss), 1u);
    EXPECT_EQ(segmentsFor(kMss + 1), 2u);
    EXPECT_EQ(segmentsFor(16384), 12u) << "netperf's 16 KB message";
    EXPECT_EQ(segmentsFor(u64{1} << 20), 725u) << "apache's 1 MB page";
}

TEST(Segmentation, PayloadsSumToMessage)
{
    for (u64 bytes : {u64{1}, u64{kMss}, u64{16384}, u64{1000000}}) {
        u64 sum = 0;
        const u64 segs = segmentsFor(bytes);
        for (u64 i = 0; i < segs; ++i) {
            const u32 p = segmentPayload(bytes, i);
            EXPECT_LE(p, kMss);
            if (i + 1 < segs) {
                EXPECT_EQ(p, kMss) << "only the tail may be partial";
            }
            sum += p;
        }
        EXPECT_EQ(sum, bytes);
    }
}

TEST(WireTime, MatchesLineRateArithmetic)
{
    // A full frame at 10 Gbps: (1448 + 90) * 8 / 10 = 1230.4 ns.
    EXPECT_NEAR(wireTimeNs(kMss, 10.0), 1230.4, 0.1);
    // Double the rate, half the time.
    EXPECT_NEAR(wireTimeNs(kMss, 20.0), 615.2, 0.1);
    // Line-rate packet rate at 10 GbE ~ 813 K frames/s.
    EXPECT_NEAR(1e9 / wireTimeNs(kMss, 10.0), 812744.0, 10.0);
}

TEST(Constants, MssMatchesMtu)
{
    EXPECT_EQ(kMss + 52u, kMtu);
    EXPECT_GT(kWireOverhead, kHeaderBytes);
}

} // namespace
} // namespace rio::net
