/**
 * @file
 * Tests for the baseline VT-d-style IOMMU model: page-table
 * map/walk/unmap, permission checks, IOTLB behaviour, root/context
 * lookup, DMA helpers and fault recording.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cycles/cycle_account.h"
#include "iommu/iommu.h"

namespace rio::iommu {
namespace {

using cycles::Cat;
using cycles::CycleAccount;

class PageTableTest : public ::testing::Test
{
  protected:
    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    CycleAccount acct;
    IoPageTable table{pm, /*coherent=*/false, cost, &acct};
};

TEST_F(PageTableTest, MapThenWalkFindsTranslation)
{
    ASSERT_TRUE(table.map(0x123, 0x456, DmaDir::kBidir).isOk());
    int levels = 0;
    auto pte = table.walk(0x123, &levels);
    ASSERT_TRUE(pte.isOk());
    EXPECT_EQ(pte.value().addr(), u64{0x456} << kPageShift);
    EXPECT_EQ(levels, 4);
    EXPECT_TRUE(pte.value().allowsRead());
    EXPECT_TRUE(pte.value().allowsWrite());
}

TEST_F(PageTableTest, WalkOfUnmappedFails)
{
    auto pte = table.walk(0x999);
    EXPECT_FALSE(pte.isOk());
    EXPECT_EQ(pte.status().code(), ErrorCode::kIoPageFault);
}

TEST_F(PageTableTest, DirectionBitsAreHonoured)
{
    ASSERT_TRUE(table.map(1, 100, DmaDir::kToDevice).isOk());
    ASSERT_TRUE(table.map(2, 200, DmaDir::kFromDevice).isOk());
    auto to_dev = table.walk(1);
    auto from_dev = table.walk(2);
    EXPECT_TRUE(to_dev.value().permits(Access::kRead));
    EXPECT_FALSE(to_dev.value().permits(Access::kWrite));
    EXPECT_FALSE(from_dev.value().permits(Access::kRead));
    EXPECT_TRUE(from_dev.value().permits(Access::kWrite));
}

TEST_F(PageTableTest, UnmapRemovesTranslation)
{
    ASSERT_TRUE(table.map(7, 70, DmaDir::kBidir).isOk());
    EXPECT_EQ(table.mappedPages(), 1u);
    ASSERT_TRUE(table.unmap(7).isOk());
    EXPECT_EQ(table.mappedPages(), 0u);
    EXPECT_FALSE(table.walk(7).isOk());
}

TEST_F(PageTableTest, DoubleMapAndDoubleUnmapFail)
{
    ASSERT_TRUE(table.map(7, 70, DmaDir::kBidir).isOk());
    EXPECT_EQ(table.map(7, 71, DmaDir::kBidir).code(), ErrorCode::kExists);
    ASSERT_TRUE(table.unmap(7).isOk());
    EXPECT_EQ(table.unmap(7).code(), ErrorCode::kNotFound);
}

TEST_F(PageTableTest, RangeMappingCoversAllPages)
{
    ASSERT_TRUE(table.mapRange(0x1000, 0x2000, 16, DmaDir::kBidir).isOk());
    for (u64 i = 0; i < 16; ++i) {
        auto pte = table.walk(0x1000 + i);
        ASSERT_TRUE(pte.isOk());
        EXPECT_EQ(pte.value().addr(), (u64{0x2000} + i) << kPageShift);
    }
    ASSERT_TRUE(table.unmapRange(0x1000, 16).isOk());
    EXPECT_EQ(table.mappedPages(), 0u);
}

TEST_F(PageTableTest, DistantIovasUseSeparateLeafTables)
{
    const u64 before = table.tablePages();
    ASSERT_TRUE(table.map(0, 1, DmaDir::kBidir).isOk());
    ASSERT_TRUE(table.map(u64{1} << 35, 2, DmaDir::kBidir).isOk());
    // Two disjoint subtrees: at least 3 extra tables each.
    EXPECT_GE(table.tablePages(), before + 6);
}

TEST_F(PageTableTest, MapChargesMoreWhenNotCoherent)
{
    CycleAccount coherent_acct;
    IoPageTable coherent_table(pm, /*coherent=*/true, cost,
                               &coherent_acct);
    ASSERT_TRUE(coherent_table.map(5, 50, DmaDir::kBidir).isOk());
    ASSERT_TRUE(table.map(5, 50, DmaDir::kBidir).isOk());
    EXPECT_GT(acct.get(Cat::kMapPageTable),
              coherent_acct.get(Cat::kMapPageTable) +
                  cost.cacheline_flush - 1);
}

TEST_F(PageTableTest, InsertCostNearTableOne)
{
    // Table 1: map/"page table" ~588 cycles (strict, non-coherent).
    for (u64 i = 0; i < 100; ++i)
        ASSERT_TRUE(table.map(0x4000 + i, i, DmaDir::kBidir).isOk());
    const double avg = acct.avg(Cat::kMapPageTable);
    EXPECT_GT(avg, 400.0);
    EXPECT_LT(avg, 800.0);
}

TEST_F(PageTableTest, DestructorReleasesAllTablePages)
{
    const u64 baseline = pm.allocatedFrames();
    {
        IoPageTable scoped(pm, false, cost, nullptr);
        ASSERT_TRUE(scoped.mapRange(0, 0, 600, DmaDir::kBidir).isOk());
        EXPECT_GT(pm.allocatedFrames(), baseline);
    }
    EXPECT_EQ(pm.allocatedFrames(), baseline);
}

// ---- IOTLB ---------------------------------------------------------------

TEST(IotlbTest, MissThenHit)
{
    Iotlb tlb;
    EXPECT_FALSE(tlb.lookup(1, 0x10).has_value());
    tlb.insert(1, 0x10, Pte{0x5000 | Pte::kRead});
    auto hit = tlb.lookup(1, 0x10);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->addr(), 0x5000u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(IotlbTest, EntriesAreKeyedByDevice)
{
    Iotlb tlb;
    tlb.insert(1, 0x10, Pte{0x5000 | Pte::kRead});
    EXPECT_FALSE(tlb.lookup(2, 0x10).has_value());
}

TEST(IotlbTest, SingleInvalidationRemovesOnlyThatEntry)
{
    Iotlb tlb;
    tlb.insert(1, 0x10, Pte{0x5000 | Pte::kRead});
    tlb.insert(1, 0x11, Pte{0x6000 | Pte::kRead});
    EXPECT_TRUE(tlb.invalidateEntry(1, 0x10));
    EXPECT_FALSE(tlb.contains(1, 0x10));
    EXPECT_TRUE(tlb.contains(1, 0x11));
    EXPECT_FALSE(tlb.invalidateEntry(1, 0x10)) << "already gone";
}

TEST(IotlbTest, FlushAllEmptiesEverything)
{
    Iotlb tlb;
    for (u64 i = 0; i < 20; ++i)
        tlb.insert(1, i, Pte{(i << 12) | Pte::kRead});
    EXPECT_GT(tlb.validEntries(), 0u);
    tlb.flushAll();
    EXPECT_EQ(tlb.validEntries(), 0u);
    EXPECT_EQ(tlb.stats().global_flushes, 1u);
}

TEST(IotlbTest, LruEvictionWithinSet)
{
    // 1 set x 2 ways: third insert evicts the least recently used.
    Iotlb tlb(IotlbConfig{1, 2});
    tlb.insert(1, 0xa, Pte{0x1000 | Pte::kRead});
    tlb.insert(1, 0xb, Pte{0x2000 | Pte::kRead});
    EXPECT_TRUE(tlb.lookup(1, 0xa).has_value()); // 0xa is now MRU
    tlb.insert(1, 0xc, Pte{0x3000 | Pte::kRead});
    EXPECT_TRUE(tlb.contains(1, 0xa));
    EXPECT_FALSE(tlb.contains(1, 0xb)) << "LRU way evicted";
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(IotlbTest, CapacityBounded)
{
    Iotlb tlb(IotlbConfig{4, 2});
    for (u64 i = 0; i < 1000; ++i)
        tlb.insert(3, i, Pte{(i << 12) | Pte::kRead});
    EXPECT_LE(tlb.validEntries(), tlb.capacity());
}

// ---- full IOMMU ------------------------------------------------------------

class IommuTest : public ::testing::Test
{
  protected:
    IommuTest() : iommu(pm, cost), table(pm, false, cost, &acct)
    {
        iommu.attachDevice(bdf, &table);
    }

    mem::PhysicalMemory pm;
    cycles::CostModel cost;
    CycleAccount acct;
    Iommu iommu{pm, cost};
    Bdf bdf{0, 3, 0};
    IoPageTable table{pm, false, cost, &acct};
};

TEST_F(IommuTest, TranslateMissWalksThenHits)
{
    ASSERT_TRUE(table.map(0x42, 0x99, DmaDir::kBidir).isOk());
    auto t1 = iommu.translate(bdf, 0x42000 + 0x123, Access::kRead);
    ASSERT_TRUE(t1.isOk());
    EXPECT_EQ(t1.value().pa, (u64{0x99} << kPageShift) + 0x123);
    EXPECT_FALSE(t1.value().iotlb_hit);
    EXPECT_EQ(t1.value().walk_levels, 4);
    EXPECT_EQ(t1.value().hw_cycles,
              cost.hw_tlb_hit + 4 * cost.hw_walk_level);

    auto t2 = iommu.translate(bdf, 0x42000, Access::kRead);
    ASSERT_TRUE(t2.isOk());
    EXPECT_TRUE(t2.value().iotlb_hit);
    EXPECT_EQ(t2.value().hw_cycles, cost.hw_tlb_hit);
}

TEST_F(IommuTest, UnknownDeviceFaults)
{
    auto t = iommu.translate(Bdf{1, 2, 3}, 0x1000, Access::kRead);
    EXPECT_FALSE(t.isOk());
    ASSERT_EQ(iommu.faults().size(), 1u);
    EXPECT_EQ(iommu.faults()[0].reason, FaultReason::kNoContext);
}

TEST_F(IommuTest, UnmappedIovaFaults)
{
    auto t = iommu.translate(bdf, 0x7777000, Access::kRead);
    EXPECT_FALSE(t.isOk());
    EXPECT_EQ(t.status().code(), ErrorCode::kIoPageFault);
    ASSERT_EQ(iommu.faults().size(), 1u);
    EXPECT_EQ(iommu.faults()[0].reason, FaultReason::kNotPresent);
}

TEST_F(IommuTest, PermissionViolationFaultsOnMissAndOnHit)
{
    ASSERT_TRUE(table.map(0x10, 0x20, DmaDir::kToDevice).isOk());
    // Miss path: write to a read-only (device-read) mapping.
    auto w = iommu.translate(bdf, 0x10000, Access::kWrite);
    EXPECT_EQ(w.status().code(), ErrorCode::kPermission);
    // Load it legitimately, then violate via the IOTLB-hit path.
    ASSERT_TRUE(iommu.translate(bdf, 0x10000, Access::kRead).isOk());
    auto w2 = iommu.translate(bdf, 0x10000, Access::kWrite);
    EXPECT_EQ(w2.status().code(), ErrorCode::kPermission);
    EXPECT_EQ(iommu.faults().size(), 2u);
}

TEST_F(IommuTest, DmaRoundTripAcrossPages)
{
    const PhysAddr buf = pm.allocContiguous(2 * kPageSize);
    ASSERT_TRUE(
        table.mapRange(0x100, buf >> kPageShift, 2, DmaDir::kBidir).isOk());
    std::vector<u8> out(5000);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<u8>(i);
    ASSERT_TRUE(
        iommu.dmaWrite(bdf, 0x100000 + 100, out.data(), out.size()).isOk());
    std::vector<u8> in(out.size());
    ASSERT_TRUE(
        iommu.dmaRead(bdf, 0x100000 + 100, in.data(), in.size()).isOk());
    EXPECT_EQ(in, out);
    // And the data really is at the mapped physical location.
    u8 probe = 0;
    pm.read(buf + 100, &probe, 1);
    EXPECT_EQ(probe, 0);
    pm.read(buf + 101, &probe, 1);
    EXPECT_EQ(probe, 1);
}

TEST_F(IommuTest, StaleIotlbEntryStillTranslatesUntilInvalidated)
{
    // The vulnerability mechanism behind the deferred modes (§3.2).
    ASSERT_TRUE(table.map(0x50, 0x60, DmaDir::kBidir).isOk());
    ASSERT_TRUE(iommu.translate(bdf, 0x50000, Access::kRead).isOk());
    ASSERT_TRUE(table.unmap(0x50).isOk());
    // Table says gone, but the IOTLB still caches it.
    EXPECT_TRUE(iommu.translate(bdf, 0x50000, Access::kRead).isOk())
        << "stale entry must erroneously translate";
    iommu.invalidateIotlbEntry(bdf, 0x50);
    EXPECT_FALSE(iommu.translate(bdf, 0x50000, Access::kRead).isOk());
}

TEST_F(IommuTest, PassthroughReturnsIdentity)
{
    iommu.setPassthrough(true);
    auto t = iommu.translate(bdf, 0xdead000, Access::kWrite);
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().pa, 0xdead000u);
    EXPECT_EQ(t.value().hw_cycles, 0u);
}

TEST_F(IommuTest, DetachRemovesContextAndIotlbEntries)
{
    ASSERT_TRUE(table.map(0x11, 0x22, DmaDir::kBidir).isOk());
    ASSERT_TRUE(iommu.translate(bdf, 0x11000, Access::kRead).isOk());
    iommu.detachDevice(bdf);
    auto t = iommu.translate(bdf, 0x11000, Access::kRead);
    EXPECT_FALSE(t.isOk());
    EXPECT_EQ(iommu.faults().back().reason, FaultReason::kNoContext);
}

TEST(BdfTest, PackUnpackRoundTrip)
{
    for (u8 bus : {0, 1, 255}) {
        for (u8 dev : {0, 13, 31}) {
            for (u8 fn : {0, 5, 7}) {
                const Bdf b{bus, dev, fn};
                const Bdf r = Bdf::unpack(b.pack());
                EXPECT_EQ(r.bus, bus);
                EXPECT_EQ(r.dev, dev);
                EXPECT_EQ(r.fn, fn);
            }
        }
    }
    EXPECT_EQ((Bdf{0, 3, 0}.toString()), "00:03.0");
}

} // namespace
} // namespace rio::iommu
