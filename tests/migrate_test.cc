/**
 * @file
 * migrate::Migrator correctness suite — the live-migration contract:
 *   - guest RAM is byte-identical on the target after resume (FNV-1a
 *     arena hash), across platforms, protection modes, dirty rates
 *     and hostility;
 *   - the per-platform vIOMMU state transfer orders the blackout the
 *     way DESIGN.md §16 claims (shadow < nested < emulated) and the
 *     rIOMMU blackout is bounded by live-ring count, not memory size;
 *   - post-migration strays hit the migrated-away ledger tier and, in
 *     protected modes, fault instead of landing;
 *   - hostility mid-migration — app-QP death on the source fleet, a
 *     QP error on the migration stream itself, teardown/reconnect
 *     churn during rounds — never loses or forks a page, and every
 *     run quiesces leak-free on both guest and hypervisor handles;
 *   - the whole engine is thread-count invariant (ParallelEngine
 *     handoff contract), report field by report field.
 */
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "dma/protection_mode.h"
#include "migrate/migrate.h"
#include "rdma/rdma.h"
#include "sys/cluster.h"
#include "virt/guest.h"
#include "virt/platform.h"

namespace rio {
namespace {

using dma::ProtectionMode;
using virt::Platform;

/** One migration experiment (small: suite-sized, not bench-sized). */
struct MigParams
{
    ProtectionMode mode = ProtectionMode::kRiommu;
    Platform platform = Platform::kBare;
    double dirty = 0.0;
    double loss = 0.0;
    u64 pages = 512;
    unsigned app_qps = 4;
    unsigned threads = 1;
    bool strays = false;
};

struct MigResult
{
    migrate::MigrationReport rep;
    u64 stray_arrivals = 0;
    u64 stray_faulted = 0;
    u64 stray_landed = 0;
    bool hash_ok = false;
    bool leaks_clean = false;
    Nanos src_lane_now = 0;
};

constexpr Nanos kStrayGapNs = 8000;

struct Stray
{
    sys::Cluster *cl = nullptr;
    u32 qp = 0;
    u64 remaining = 0;
    bool connected = false;
};

void
strayTick(const std::shared_ptr<Stray> &s)
{
    if (s->remaining == 0)
        return;
    --s->remaining;
    if (s->connected)
        (void)s->cl->nic(1).postWrite(s->qp, 512, 0);
    s->cl->lane(1).sim().scheduleAfter(kStrayGapNs,
                                      [s] { strayTick(s); });
}

/**
 * Build the cluster, establish the fleet, migrate, audit. @p hostility
 * runs after Migrator::start() and before the engine runs — the hook
 * where tests schedule mid-migration trouble.
 */
MigResult
runMig(const MigParams &p,
       const std::function<void(sys::Cluster &, migrate::Migrator &,
                                const std::vector<u32> &)> &hostility =
           nullptr)
{
    sys::ClusterConfig cfg;
    cfg.machines = 2;
    cfg.threads = p.threads;
    cfg.mode = p.mode;
    cfg.max_qps = p.app_qps + 8; // churn headroom
    cfg.migration = true;
    cfg.reliability.enabled = true; // abortQp + migrated-away ledger
    if (p.loss > 0.0) {
        cfg.wire.drop_rate = p.loss;
        cfg.wire.dup_rate = std::min(0.25, 3 * p.loss);
        cfg.wire.delay_rate = std::min(0.5, 10 * p.loss);
        cfg.wire.delay_max_ns = 60000;
    }
    sys::Cluster cl(cfg);

    std::unique_ptr<virt::Guest> sg, dg;
    unsigned src_binding = 0;
    if (p.platform != Platform::kBare) {
        sg = std::make_unique<virt::Guest>(cl.machine(0), p.platform);
        dg = std::make_unique<virt::Guest>(cl.machine(1), p.platform);
        src_binding = sg->bindHandle(cl.handle(0), cl.machine(0).core(0));
        (void)dg->bindHandle(cl.handle(1), cl.machine(1).core(0));
    }
    cl.bringUp();

    std::vector<u32> app_qps;
    auto stray = std::make_shared<Stray>();
    stray->cl = &cl;
    cl.machine(0).core(0).post([&] {
        for (unsigned q = 0; q < p.app_qps; ++q) {
            auto res = cl.nic(0).connect(1, [&app_qps](u32 qp, bool ok) {
                if (ok)
                    app_qps.push_back(qp);
            });
            ASSERT_TRUE(res.isOk());
        }
    });
    if (p.strays) {
        cl.machine(1).core(0).post([&cl, stray] {
            auto res = cl.nic(1).connect(0, [stray](u32 qp, bool ok) {
                stray->qp = qp;
                stray->connected = ok;
            });
            ASSERT_TRUE(res.isOk());
        });
    }
    cl.run();
    EXPECT_EQ(app_qps.size(), p.app_qps);

    migrate::MigrateConfig mc;
    mc.src = 0;
    mc.dst = 1;
    mc.platform = p.platform;
    mc.guest_pages = p.pages;
    mc.dirty_pages_per_ms = p.dirty;
    mc.converge_dirty = 16;
    migrate::Migrator mig(cl, mc);
    mig.setGuests(sg.get(), dg.get(), src_binding);
    mig.start();
    if (p.strays) {
        stray->remaining = p.pages * 4;
        cl.lane(1).sim().scheduleAfter(kStrayGapNs,
                                      [stray] { strayTick(stray); });
    }
    if (hostility)
        hostility(cl, mig, app_qps);
    cl.run();

    MigResult out;
    out.rep = mig.report();
    out.hash_ok = mig.arenaHash(false) == mig.arenaHash(true);
    const rdma::RdmaStats &src_stats = cl.nic(0).stats();
    out.stray_arrivals = src_stats.migrated_away_arrivals;
    out.stray_faulted = src_stats.migrated_away_faulted;
    out.stray_landed = src_stats.migrated_away_landed;
    out.src_lane_now = cl.lane(0).sim().now();

    mig.cleanup();
    cl.quiesce();
    out.leaks_clean = true;
    for (unsigned m = 0; m < 2; ++m) {
        out.leaks_clean &= cl.checkLeaks(m).clean();
        out.leaks_clean &= cl.checkMigLeaks(m).clean();
    }
    return out;
}

/** RAM lands byte-identical for every platform x a mode sample, with
 * an active dirtier forcing multi-round pre-copy and re-shipping. */
TEST(Migrate, MemoryByteIdenticalAcrossPlatformsAndModes)
{
    for (Platform platform : {Platform::kBare, Platform::kEmulated,
                              Platform::kShadow, Platform::kNested}) {
        for (ProtectionMode mode :
             {ProtectionMode::kRiommu, ProtectionMode::kStrict,
              ProtectionMode::kNone}) {
            SCOPED_TRACE(std::string(dma::modeName(mode)) + "/" +
                         virt::platformName(platform));
            MigParams p;
            p.mode = mode;
            p.platform = platform;
            p.dirty = 400; // hot enough to re-dirty shipped pages
            p.pages = 512;
            auto r = runMig(p);
            EXPECT_TRUE(r.rep.completed);
            EXPECT_FALSE(r.rep.failed);
            EXPECT_TRUE(r.hash_ok);
            EXPECT_TRUE(r.leaks_clean);
            EXPECT_GE(r.rep.pages_shipped, p.pages);
            EXPECT_GT(r.rep.dirtier_writes, 0u);
            EXPECT_GT(r.rep.blackout_ns, 0);
            EXPECT_LT(r.rep.blackout_ns, r.rep.total_ns);
        }
    }
}

/** The migrated-away ledger tier: strays at the source's dead QPs are
 * counted, and protected modes fault them all — zero landings. */
TEST(Migrate, PostMigrationStraysFaultInProtectedModes)
{
    for (ProtectionMode mode :
         {ProtectionMode::kRiommu, ProtectionMode::kStrict,
          ProtectionMode::kNone}) {
        SCOPED_TRACE(dma::modeName(mode));
        MigParams p;
        p.mode = mode;
        p.platform = Platform::kNested;
        p.pages = 512;
        p.dirty = 50;
        p.strays = true;
        auto r = runMig(p);
        EXPECT_TRUE(r.rep.completed);
        EXPECT_TRUE(r.hash_ok);
        EXPECT_TRUE(r.leaks_clean);
        EXPECT_GT(r.stray_arrivals, 0u);
        if (mode == ProtectionMode::kNone) {
            EXPECT_EQ(r.stray_faulted, 0u);
            EXPECT_GT(r.stray_landed, 0u);
        } else {
            EXPECT_EQ(r.stray_landed, 0u);
            EXPECT_GT(r.stray_faulted, 0u);
        }
    }
}

/** DESIGN.md §16's per-platform transfer table, as a blackout
 * ordering: shadow ships only what is mapped, nested ships a stage-2
 * covering the whole arena, emulated replays every mapping as an
 * install+invalidate exit pair on the target. */
TEST(Migrate, BlackoutOrdersShadowUnderNestedUnderEmulated)
{
    auto run = [](Platform platform) {
        MigParams p;
        p.mode = ProtectionMode::kStrict;
        p.platform = platform;
        p.pages = 4096;
        p.dirty = 50;
        p.app_qps = 8;
        return runMig(p);
    };
    auto sh = run(Platform::kShadow);
    auto ne = run(Platform::kNested);
    auto em = run(Platform::kEmulated);
    ASSERT_TRUE(sh.rep.completed && ne.rep.completed && em.rep.completed);
    EXPECT_LT(sh.rep.state_bytes, ne.rep.state_bytes);
    EXPECT_LT(sh.rep.blackout_ns, ne.rep.blackout_ns);
    EXPECT_LT(ne.rep.blackout_ns, em.rep.blackout_ns);
    EXPECT_GT(em.rep.mappings_replayed, 0u);
}

/** The paper's O(rings) argument, turned into downtime: the rIOMMU
 * blackout grows with live-ring count and stays flat in memory. */
TEST(Migrate, RiommuBlackoutBoundedByRingsNotMemory)
{
    auto run = [](unsigned qps, u64 pages) {
        MigParams p;
        p.mode = ProtectionMode::kRiommu;
        p.platform = Platform::kNested;
        p.app_qps = qps;
        p.pages = pages;
        return runMig(p);
    };
    auto small = run(2, 1024);
    auto more_rings = run(10, 1024);
    auto more_memory = run(2, 4096);
    ASSERT_TRUE(small.rep.completed && more_rings.rep.completed &&
                more_memory.rep.completed);
    // Each QP adds a ctrl+data ring pair: 8 extra QPs = 16 rings.
    EXPECT_EQ(small.rep.live_rings, 1u + 2u * 2u);
    EXPECT_EQ(more_rings.rep.live_rings, small.rep.live_rings + 16);
    EXPECT_EQ(more_rings.rep.reg_hypercalls, more_rings.rep.live_rings);
    EXPECT_GT(more_rings.rep.blackout_ns, small.rep.blackout_ns);
    // 4x the guest memory: same rings, same re-registration bill.
    EXPECT_EQ(more_memory.rep.live_rings, small.rep.live_rings);
    EXPECT_EQ(more_memory.rep.state_bytes, small.rep.state_bytes);
    EXPECT_LE(more_memory.rep.blackout_ns,
              small.rep.blackout_ns + small.rep.blackout_ns / 10);
}

/** Surprise app death mid-pre-copy: every app QP on the source fleet
 * hard-aborts during round 0. The migration stream is unaffected, the
 * blackout's ring re-registration sees only the survivors, and the
 * arena still lands intact. */
TEST(Migrate, SurpriseAppDeathMidPreCopyStillCompletes)
{
    MigParams p;
    p.mode = ProtectionMode::kRiommu;
    p.platform = Platform::kNested;
    p.pages = 2048;
    p.app_qps = 4;
    auto r = runMig(p, [](sys::Cluster &cl, migrate::Migrator &,
                          const std::vector<u32> &qps) {
        cl.lane(0).sim().scheduleAfter(50000, [&cl, qps] {
            cl.machine(0).core(0).post([&cl, qps] {
                for (u32 q : qps)
                    ASSERT_TRUE(cl.nic(0).abortQp(q).isOk());
            });
        });
    });
    EXPECT_TRUE(r.rep.completed);
    EXPECT_TRUE(r.hash_ok);
    EXPECT_TRUE(r.leaks_clean);
    // Only the static ring survives to blackout: the aborted QPs'
    // ring pairs are gone, so the target re-registers 1 ring, not 9.
    EXPECT_EQ(r.rep.live_rings, 1u);
    EXPECT_EQ(r.rep.reg_hypercalls, 1u);
}

/** A QP error on the migration stream itself: the round resumes on a
 * fresh QP, unacked chunks re-ship in order, and no page is lost or
 * double-applied (the arena hash is the oracle for both). */
TEST(Migrate, StreamQpErrorResumesRoundWithoutPageLoss)
{
    MigParams p;
    p.mode = ProtectionMode::kStrict;
    p.platform = Platform::kShadow;
    p.pages = 2048;
    p.dirty = 100;
    auto r = runMig(p, [](sys::Cluster &cl, migrate::Migrator &,
                          const std::vector<u32> &) {
        cl.lane(0).sim().scheduleAfter(100000, [&cl] {
            cl.machine(0).core(0).post([&cl] {
                // The stream is the hypervisor NIC's only QP; abort
                // every slot so we cannot miss it.
                for (u32 q = 0; q < cl.migNic(0).maxQps(); ++q)
                    (void)cl.migNic(0).abortQp(q);
            });
        });
    });
    EXPECT_TRUE(r.rep.completed);
    EXPECT_FALSE(r.rep.failed);
    EXPECT_GE(r.rep.stream_qp_errors, 1u);
    EXPECT_TRUE(r.hash_ok);
    EXPECT_TRUE(r.leaks_clean);
    // Everything unacked at the error re-shipped on the new QP.
    EXPECT_GE(r.rep.pages_shipped, p.pages);
}

/** Teardown/reconnect churn on the source fleet while rounds run:
 * rings come and go under the migrator's feet, and the final
 * re-registration bill reflects the fleet as of blackout. */
TEST(Migrate, SourceFleetChurnDuringRounds)
{
    MigParams p;
    p.mode = ProtectionMode::kRiommu;
    p.platform = Platform::kNested;
    p.pages = 2048;
    p.dirty = 100;
    p.app_qps = 4;
    unsigned reconnects = 0;
    auto r = runMig(p, [&reconnects](sys::Cluster &cl,
                                     migrate::Migrator &,
                                     const std::vector<u32> &qps) {
        for (unsigned k = 0; k < qps.size(); ++k) {
            const u32 q = qps[k];
            const bool abort = (k % 2 == 0);
            cl.lane(0).sim().scheduleAfter(
                40000 * (k + 1), [&cl, &reconnects, q, abort] {
                    cl.machine(0).core(0).post([&cl, &reconnects, q,
                                                abort] {
                        if (abort)
                            ASSERT_TRUE(cl.nic(0).abortQp(q).isOk());
                        else
                            ASSERT_TRUE(
                                cl.nic(0).teardown(q, nullptr).isOk());
                        auto res = cl.nic(0).connect(
                            1, [&reconnects](u32, bool ok) {
                                if (ok)
                                    ++reconnects;
                            });
                        ASSERT_TRUE(res.isOk());
                    });
                });
        }
    });
    EXPECT_TRUE(r.rep.completed);
    EXPECT_TRUE(r.hash_ok);
    EXPECT_TRUE(r.leaks_clean);
    EXPECT_EQ(reconnects, p.app_qps);
    // The reconnected fleet is what blackout re-registers: all 4
    // replacement QPs alive, original ones gone.
    EXPECT_EQ(r.rep.live_rings, 1u + 2u * 4u);
}

std::string
migFingerprint(unsigned threads)
{
    MigParams p;
    p.mode = ProtectionMode::kRiommu;
    p.platform = Platform::kNested;
    p.pages = 1024;
    p.dirty = 300;
    p.loss = 0.02;
    p.strays = true;
    p.threads = threads;
    auto r = runMig(p);
    std::ostringstream os;
    os << r.rep.completed << '/' << r.rep.rounds << '/'
       << r.rep.pages_shipped << '/' << r.rep.pages_reshipped << '/'
       << r.rep.page_naks << '/' << r.rep.state_chunks << '/'
       << r.rep.state_bytes << '/' << r.rep.reg_hypercalls << '/'
       << r.rep.live_rings << '/' << r.rep.stream_qp_errors << '/'
       << r.rep.dirtier_writes << '/' << r.rep.blackout_ns << '/'
       << r.rep.total_ns << '/' << r.stray_arrivals << '/'
       << r.stray_faulted << '/' << r.stray_landed << '/' << r.hash_ok
       << '/' << r.src_lane_now;
    return os.str();
}

/** ParallelEngine handoff contract: the whole migration — rounds,
 * freight, blackout, strays, lane clocks — is identical at any
 * thread count, even over a lossy wire. */
TEST(Migrate, ReportIdenticalAcrossThreadCounts)
{
    const std::string one = migFingerprint(1);
    const std::string two = migFingerprint(2);
    EXPECT_EQ(one, two);
}

} // namespace
} // namespace rio
