/**
 * @file
 * Observability tests: metrics-registry identity and determinism,
 * histogram bucket boundaries, the event timeline's bounded rings and
 * Chrome-trace export, and the flight recorder's dump-on-fault path.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "cycles/batch.h"
#include "dma/fault.h"
#include "obs/deferred.h"
#include "obs/flight.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/timeline.h"
#include "obs/trace_ctx.h"

namespace rio::obs {
namespace {

/** Global obs state is process-wide; start each test from scratch. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        registry().clear();
        timeline().clear();
        timeline().setRecording(false);
        flightRecorder().clear();
        clearFlightDumpArchive();
        setDeferredEnabled(false);
        setSloRecording(false);
    }

    void TearDown() override { SetUp(); }
};

// Timeline/flight paths collapse under -DRIO_OBS=OFF; only the
// registry (the always-available tier) is testable there. Must be
// expanded in the test body itself: GTEST_SKIP() in a helper would
// only return from the helper.
#define RIO_REQUIRE_OBS_COMPILED()                                     \
    do {                                                               \
        if (!kObsCompiled)                                             \
            GTEST_SKIP() << "observability compiled out (RIO_OBS=OFF)"; \
    } while (0)

// ---- registry ---------------------------------------------------------------

TEST_F(ObsTest, SameIdentityReturnsSameMetric)
{
    Counter &a = registry().counter("iotlb.hits");
    Counter &b = registry().counter("iotlb.hits");
    EXPECT_EQ(&a, &b);
    Counter &c = registry().counter("iotlb.hits", {{"dev", "nic0"}});
    EXPECT_NE(&a, &c) << "labels are part of the identity";
    a.inc(3);
    c.inc();
    EXPECT_EQ(b.value, 3u);
    EXPECT_EQ(c.value, 1u);
}

TEST_F(ObsTest, GaugeTracksHighWater)
{
    Gauge &g = registry().gauge("qi.depth");
    g.set(5);
    g.set(12);
    g.set(2);
    EXPECT_EQ(g.value, 2);
    EXPECT_EQ(g.high, 12);
    g.add(-2);
    EXPECT_EQ(g.value, 0);
    EXPECT_EQ(g.high, 12);
}

TEST_F(ObsTest, HistogramBucketBoundariesAreInclusiveUpperBounds)
{
    Histogram &h =
        registry().histogram("lat", {}, std::vector<u64>{10, 100});
    for (u64 v : {5u, 10u, 11u, 100u, 101u})
        h.observe(v);
    ASSERT_EQ(h.buckets().size(), 3u) << "two bounds + overflow";
    EXPECT_EQ(h.buckets()[0], 2u) << "5 and 10 (v <= 10)";
    EXPECT_EQ(h.buckets()[1], 2u) << "11 and 100 (v <= 100)";
    EXPECT_EQ(h.buckets()[2], 1u) << "101 overflows";
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 227u);
    EXPECT_DOUBLE_EQ(h.avg(), 227.0 / 5.0);
    EXPECT_EQ(h.quantileBound(0.4), 10u);
    EXPECT_EQ(h.quantileBound(0.8), 100u);
}

TEST_F(ObsTest, SnapshotIsDeterministicAcrossIdenticalRuns)
{
    auto run = [] {
        registry().counter("a.ops").inc(7);
        registry().gauge("a.depth", {{"q", "0"}}).set(3);
        registry().histogram("a.lat").observe(500);
        registry().counter("b.ops").inc();
    };
    run();
    const auto first = registry().snapshot();
    ASSERT_FALSE(first.empty());

    registry().clear();
    run();
    const auto second = registry().snapshot();
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].key, second[i].key) << i;
        EXPECT_TRUE(first[i] == second[i]) << first[i].key;
    }
}

TEST_F(ObsTest, ResetValuesKeepsRegistrationsAndPointers)
{
    Counter &c = registry().counter("x.ops");
    c.inc(9);
    registry().resetValues();
    EXPECT_EQ(c.value, 0u) << "same storage, zeroed";
    EXPECT_EQ(&registry().counter("x.ops"), &c);
}

// ---- deferred batching (the parallel-engine hot-path tier) ------------------

TEST_F(ObsTest, DeferredCounterPassesThroughWhenDisabled)
{
    Counter &c = registry().counter("batch.test");
    DeferredCounter d(c);
    d.bump(2);
    d.bump();
    EXPECT_EQ(c.get(), 3u) << "deferral off: every bump lands at once";
    EXPECT_EQ(d.pending(), 0u);
}

TEST_F(ObsTest, DeferredCounterBatchesUntilFlush)
{
    Counter &c = registry().counter("batch.test");
    DeferredCounter d(c);
    setDeferredEnabled(true);
    for (int i = 0; i < 10; ++i)
        d.bump();
    EXPECT_EQ(c.get(), 0u) << "updates held locally";
    EXPECT_EQ(d.pending(), 10u);
    d.flush();
    EXPECT_EQ(c.get(), 10u);
    EXPECT_EQ(d.pending(), 0u);
}

TEST_F(ObsTest, DeferredCounterAutoFlushesAtThreshold)
{
    Counter &c = registry().counter("batch.test");
    DeferredCounter d(c);
    setDeferredEnabled(true);
    for (u64 i = 0; i < DeferredCounter::kFlushEvery; ++i)
        d.bump();
    EXPECT_EQ(c.get(), DeferredCounter::kFlushEvery);
    EXPECT_EQ(d.pending(), 0u);
}

TEST_F(ObsTest, SnapshotSettlesDeferredState)
{
    Counter &c = registry().counter("batch.test");
    DeferredCounter d(c);
    setDeferredEnabled(true);
    d.bump(7);
    // A snapshot must always be exact, even mid-burst: it flushes
    // every live accumulator first.
    const auto snap = registry().snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].values, (std::vector<u64>{7}));
}

TEST_F(ObsTest, ResetValuesSettlesDeferredStateFirst)
{
    Counter &c = registry().counter("batch.test");
    DeferredCounter d(c);
    setDeferredEnabled(true);
    d.bump(7);
    // Reset must flush pending deltas first so they are zeroed with
    // everything else — deferral may move *when* a metric lands,
    // never by how much, including across a reset boundary. Without
    // the flush, the 7 would land on top of the zeroed counter later.
    registry().resetValues();
    EXPECT_EQ(d.pending(), 0u);
    d.bump(3);
    const auto snap = registry().snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].values, (std::vector<u64>{3}))
        << "post-reset total counts post-reset activity only";
}

TEST_F(ObsTest, DisablingDeferralSettlesPendingState)
{
    Counter &c = registry().counter("batch.test");
    DeferredCounter d(c);
    Histogram &h = registry().histogram("batch.hist", {}, {10, 100});
    DeferredHistogram dh;
    dh.bind(&h);
    setDeferredEnabled(true);
    d.bump(5);
    dh.note(50);
    EXPECT_EQ(c.get(), 0u);
    EXPECT_EQ(h.count(), 0u);
    // Switching deferral off settles every live accumulator: nothing
    // strands until the next snapshot, and later direct updates land
    // after (not before) the amounts batched earlier.
    setDeferredEnabled(false);
    EXPECT_EQ(c.get(), 5u);
    EXPECT_EQ(d.pending(), 0u);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(dh.pendingCount(), 0u);
}

TEST_F(ObsTest, DeferredHistogramDeliversBurstAtOnce)
{
    Histogram &h = registry().histogram("batch.hist", {}, {10, 100});
    DeferredHistogram d;
    d.bind(&h);
    setDeferredEnabled(true);
    d.note(5);
    d.note(50);
    d.note(500);
    EXPECT_EQ(h.count(), 0u) << "burst still buffered";
    d.endBurst();
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 555u);
    EXPECT_EQ(h.buckets(), (std::vector<u64>{1, 1, 1}));
}

TEST_F(ObsTest, BatchChargeMatchesPerOpTotals)
{
    cycles::CycleAccount per_op, batched;
    for (Cycles c : {10u, 20u, 30u})
        per_op.charge(cycles::Cat::kUnmapIotlbInv, c);
    {
        cycles::setBatchingEnabled(true);
        cycles::BatchCharge b(batched, cycles::Cat::kUnmapIotlbInv);
        for (Cycles c : {10u, 20u, 30u})
            b.add(c);
        EXPECT_EQ(batched.ops(cycles::Cat::kUnmapIotlbInv), 0u)
            << "charges held until the burst ends";
    } // RAII flush
    cycles::setBatchingEnabled(false);
    EXPECT_EQ(batched.get(cycles::Cat::kUnmapIotlbInv),
              per_op.get(cycles::Cat::kUnmapIotlbInv));
    EXPECT_EQ(batched.ops(cycles::Cat::kUnmapIotlbInv),
              per_op.ops(cycles::Cat::kUnmapIotlbInv));
}

TEST_F(ObsTest, ConcurrentUpdatesFromManyThreadsLoseNothing)
{
    // The parallel engine's lanes share the process-wide registry;
    // counters are relaxed atomics, gauges CAS their high-water mark,
    // histograms serialize behind their spinlock. 4 threads x 10k
    // updates must all land (this is also the TSan lane's meat).
    Counter &c = registry().counter("mt.counter");
    Gauge &g = registry().gauge("mt.gauge");
    Histogram &h = registry().histogram("mt.hist", {}, {100});
    constexpr int kThreads = 4, kPerThread = 10000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                c.inc();
                g.add(1);
                h.observe(static_cast<u64>(i % 200));
            }
        });
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(c.get(), u64{kThreads} * kPerThread);
    EXPECT_EQ(g.value, i64{kThreads} * kPerThread);
    EXPECT_EQ(g.high, i64{kThreads} * kPerThread);
    EXPECT_EQ(h.count(), u64{kThreads} * kPerThread);
}

// ---- timeline ---------------------------------------------------------------

TEST_F(ObsTest, EventRingKeepsNewestAndCountsDrops)
{
    EventRing ring(4);
    for (u64 i = 1; i <= 6; ++i) {
        Event e;
        e.t = i;
        ring.push(e);
    }
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushed(), 6u);
    EXPECT_EQ(ring.dropped(), 2u);
    const auto events = ring.inOrder();
    ASSERT_EQ(events.size(), 4u);
    for (size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].t, i + 3) << "oldest-first, newest kept";
}

TEST_F(ObsTest, TracksRecordOnlyWhileRecording)
{
    RIO_REQUIRE_OBS_COMPILED();
    Event e;
    e.pid = timeline().allocPid();
    timeline().emit(e);
    EXPECT_EQ(timeline().recorded(), 0u) << "gate off: tracks empty";
    EXPECT_GE(flightRecorder().ring().pushed(), 1u)
        << "flight ring is always on";

    timeline().setRecording(true);
    timeline().emit(e);
    EXPECT_EQ(timeline().recorded(), 1u);
}

TEST_F(ObsTest, ChromeTraceExportPairsAsyncSpans)
{
    RIO_REQUIRE_OBS_COMPILED();
    timeline().setRecording(true);
    const u16 pid = timeline().allocPid();

    Event issue;
    issue.kind = Ev::kQiIssue;
    issue.t = 1000;
    issue.id = timeline().nextSpanId();
    issue.pid = pid;
    timeline().emit(issue);

    Event done = issue;
    done.kind = Ev::kQiComplete;
    done.t = 3000;
    done.arg = 2150;
    timeline().emit(done);

    Event span;
    span.kind = Ev::kMap;
    span.t = 5000;
    span.dur_ns = 200;
    span.pid = pid;
    timeline().emit(span);

    const std::string path = "/tmp/rio_obs_trace_test.json";
    ASSERT_TRUE(timeline().writeChromeTrace(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos)
        << "async begin for qi_issue";
    EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos)
        << "async end for qi_complete";
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos)
        << "complete span for the map";
}

// ---- flight recorder --------------------------------------------------------

TEST_F(ObsTest, FaultRecoveryFiresFlightDumpWithRingContents)
{
    RIO_REQUIRE_OBS_COMPILED();
    // Preload the ring with the events "before the failure".
    Event e;
    e.kind = Ev::kMap;
    e.t = 42;
    e.bdf = 0x0018;
    timeline().emit(e);

    dma::FaultEngine eng;
    eng.setPolicy(dma::FaultPolicy::kRetryRemap);
    Status out = eng.recover(
        Status(ErrorCode::kIoPageFault, "test fault"), [] {},
        [] { return Status::ok(); });
    EXPECT_TRUE(out.isOk());

    ASSERT_GE(flightRecorder().dumpCount(), 1u);
    const FlightDump *d = flightRecorder().lastDump();
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->reason, "dma_fault");
    EXPECT_NE(d->text.find("map"), std::string::npos)
        << "the preloaded event is in the dump:\n"
        << d->text;
    EXPECT_NE(d->text.find("fault"), std::string::npos)
        << "the faulting event itself is in the dump:\n"
        << d->text;
    EXPECT_EQ(registry().counter("flight.dumps").value, 1u);
}

TEST_F(ObsTest, DumpLimitRetainsFirstFewButCountsAll)
{
    RIO_REQUIRE_OBS_COMPILED();
    flightRecorder().setDumpLimit(2);
    for (int i = 0; i < 5; ++i)
        flightDump("storm");
    EXPECT_EQ(flightRecorder().dumpCount(), 5u);
    EXPECT_EQ(flightRecorder().dumps().size(), 2u)
        << "beyond the limit a dump is only a sequence bump";
    EXPECT_EQ(flightDumpArchive().size(), 2u)
        << "the archive honours the recorder's limit too";
    EXPECT_EQ(registry().counter("flight.dumps").value, 5u);
    flightRecorder().setDumpLimit(FlightRecorder::kDefaultDumpLimit);
}

TEST_F(ObsTest, WorkerThreadDumpsReachProcessWideArchive)
{
    RIO_REQUIRE_OBS_COMPILED();
    flightDump("main_side");
    // A dump fired from a pool thread (mid-window assertion under
    // ParallelEngine) lives in that thread's recorder, which dies
    // with the thread — the archive is what keeps it inspectable.
    std::thread worker([] {
        Event e;
        e.kind = Ev::kFault;
        e.t = 77;
        timeline().emit(e); // lands in the worker's own flight ring
        flightDump("worker_side");
    });
    worker.join();
    EXPECT_EQ(flightRecorder().dumps().size(), 1u)
        << "the per-thread recorder only sees its own dump";
    const auto archive = flightDumpArchive();
    ASSERT_EQ(archive.size(), 2u) << "the archive sees both";
    EXPECT_EQ(archive[0].reason, "main_side");
    EXPECT_EQ(archive[1].reason, "worker_side");
    EXPECT_NE(archive[1].text.find("fault"), std::string::npos)
        << "worker-side ring contents survive the thread:\n"
        << archive[1].text;

    // And the trace export embeds the worker-side dump marker.
    const std::string path = "/tmp/rio_obs_archive_trace_test.json";
    ASSERT_TRUE(timeline().writeChromeTrace(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());
    EXPECT_NE(json.find("worker_side"), std::string::npos)
        << "chrome trace reads the archive, not one thread's dumps";
}

// ---- quantile interpolation -------------------------------------------------

TEST_F(ObsTest, QuantileBoundInterpolatesWithinBucket)
{
    // 100 uniform values 1..100 into two buckets; the old
    // implementation returned each bucket's upper bound for every
    // quantile inside it (p50 == p99 == 100 here would be nonsense).
    Histogram &h =
        registry().histogram("lat.uniform", {}, std::vector<u64>{50, 100});
    for (u64 v = 1; v <= 100; ++v)
        h.observe(v);
    EXPECT_EQ(h.quantileBound(0.5), 50u) << "p50 lands at bucket 0's end";
    EXPECT_EQ(h.quantileBound(0.99), 99u)
        << "p99 interpolates inside bucket 1, not its bound";
    EXPECT_EQ(h.quantileBound(0.25), 25u);
    EXPECT_EQ(h.quantileBound(1.0), 100u);
}

TEST_F(ObsTest, QuantileBoundOverflowCollapsesToLastFiniteBound)
{
    Histogram &h =
        registry().histogram("lat.over", {}, std::vector<u64>{50, 100});
    h.observe(25);
    h.observe(150); // overflow bucket: no finite upper edge
    EXPECT_EQ(h.quantileBound(1.0), 100u)
        << "overflow has no width to interpolate across";
    EXPECT_EQ(h.quantileBound(0.5), 50u)
        << "within a finite bucket the estimate assumes uniform mass";
}

// ---- trace context ----------------------------------------------------------

TEST_F(ObsTest, TraceScopeAttachesAmbientTraceToEmittedEvents)
{
    RIO_REQUIRE_OBS_COMPILED();
    EXPECT_EQ(currentTrace(), 0u);
    {
        TraceScope outer(0x1234);
        Event e;
        e.kind = Ev::kMap;
        e.t = 10;
        timeline().emit(e); // trace 0: inherits the ambient scope
        {
            TraceScope inner(0); // zero: keeps the outer trace
            EXPECT_EQ(currentTrace(), 0x1234u);
        }
        Event tagged;
        tagged.kind = Ev::kUnmap;
        tagged.t = 20;
        tagged.trace = 0x9999; // explicit tag wins over the scope
        timeline().emit(tagged);
    }
    EXPECT_EQ(currentTrace(), 0u) << "scope restores on exit";

    const auto events = flightRecorder().ring().inOrder();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].trace, 0x1234u);
    EXPECT_EQ(events[1].trace, 0x9999u);
}

// ---- exact SLO recording ----------------------------------------------------

TEST_F(ObsTest, OpLatencyRecorderDropsNewestWhenFull)
{
    OpLatencyRecorder r(/*capacity=*/4);
    for (u64 i = 1; i <= 6; ++i) {
        OpRecord rec;
        rec.latency_ns = static_cast<Nanos>(i);
        r.record(rec);
    }
    EXPECT_EQ(r.pushed(), 6u);
    EXPECT_EQ(r.dropped(), 2u);
    const auto kept = r.inOrder();
    ASSERT_EQ(kept.size(), 4u);
    // Drop-newest keeps a deterministic prefix of the op stream — the
    // retained set cannot depend on lane interleaving.
    for (size_t i = 0; i < kept.size(); ++i)
        EXPECT_EQ(kept[i].latency_ns, static_cast<Nanos>(i + 1));
}

TEST_F(ObsTest, SloReportComputesExactQuantilesAndTailAttribution)
{
    std::vector<OpRecord> ops;
    for (u64 i = 1; i <= 100; ++i) {
        OpRecord rec;
        rec.latency_ns = static_cast<Nanos>(i * 10);
        rec.cat_cycles[0] = 5; // baseline work in every op
        if (i >= 99) {         // the two tail ops burn cat 3
            rec.cat_cycles[3] = 1000;
            rec.retransmits = 2;
        }
        ops.push_back(rec);
    }
    const SloReport rep = computeSloReport(ops);
    EXPECT_EQ(rep.count, 100u);
    EXPECT_EQ(rep.p50, 500);  // nearest rank: ceil(0.5*100) = 50th
    EXPECT_EQ(rep.p99, 990);  // ceil(0.99*100) = 99th
    EXPECT_EQ(rep.p999, 1000);
    EXPECT_EQ(rep.max, 1000);
    EXPECT_EQ(rep.tail_ops, 2u) << "ops at or above the p99 value";
    EXPECT_EQ(rep.tail_retransmits, 4u);
    EXPECT_EQ(rep.top_cat, 3u) << "cat 3 dominates the tail ops";
    EXPECT_GT(rep.top_cat_share, 0.99);
    EXPECT_EQ(rep.all_cat_cycles[0], 500u);
}

TEST_F(ObsTest, SloRecordingGateIsProcessWide)
{
    EXPECT_FALSE(sloRecording());
    setSloRecording(true);
    EXPECT_TRUE(sloRecording());
    setSloRecording(false);
    EXPECT_FALSE(sloRecording());
}

// ---- chrome export of op spans ----------------------------------------------

TEST_F(ObsTest, ChromeTraceExportStitchesOpSpansById)
{
    RIO_REQUIRE_OBS_COMPILED();
    timeline().setRecording(true);
    const u16 pid = timeline().allocPid();
    const u64 trace = 0xabcd01;

    Event post;
    post.kind = Ev::kOpPost;
    post.t = 1000;
    post.pid = pid;
    post.trace = trace;
    timeline().emit(post);

    Event wire;
    wire.kind = Ev::kWireTx;
    wire.t = 1600;
    wire.dur_ns = 600;
    wire.pid = pid;
    wire.trace = trace;
    timeline().emit(wire);

    Event rtx;
    rtx.kind = Ev::kRetransmit;
    rtx.t = 1800;
    rtx.pid = pid;
    rtx.trace = trace;
    timeline().emit(rtx);

    Event cqe;
    cqe.kind = Ev::kOpCqe;
    cqe.t = 2500;
    cqe.pid = pid;
    cqe.trace = trace;
    timeline().emit(cqe);

    const std::string path = "/tmp/rio_obs_op_trace_test.json";
    ASSERT_TRUE(timeline().writeChromeTrace(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"cat\": \"op\""), std::string::npos);
    EXPECT_NE(json.find("\"id2\": {\"global\": \"0xabcd01\"}"),
              std::string::npos)
        << "op spans stitch cross-machine via the global id2";
    EXPECT_NE(json.find("\"ph\": \"n\""), std::string::npos)
        << "retransmit renders as an async instant on the op";
    EXPECT_NE(json.find("\"rioMeta\""), std::string::npos)
        << "export carries recorded/dropped accounting";
    EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
}

} // namespace
} // namespace rio::obs
